//! Exact cost attribution: `CostBreakdown` trees whose children fold-sum
//! **bit-exactly** to their parent totals, plus a per-einsum roofline
//! classification (arithmetic intensity vs. machine balance).
//!
//! The paper's argument is an attribution argument — Fig 6/7 decompose
//! attention cycles per einsum into compute vs. memory vs. drain time.
//! This module attaches that decomposition to [`AttentionReport`] and
//! [`E2eReport`] without perturbing a single modeled number: parent
//! totals are the existing report values, and every child set is produced
//! by [`exact_split`], which charges each natural cost and then assigns
//! the floating-point residual to the overlap/drain bucket so the IEEE
//! left-fold `((c₀ + c₁) + c₂) + …` reproduces the parent total exactly.
//!
//! Attribution convention (hierarchical): earlier resources claim
//! overlapped cycles first. The 2D array charges its full busy time, the
//! 1D array charges only cycles not hidden under the 2D roofline, DRAM
//! charges only exposed memory cycles, and the residual is pipeline
//! fill/drain plus modeling overhead.

use crate::common::Machine;
use crate::e2e::E2eReport;
use crate::report::{AttentionReport, AttnWork};
use fusemax_arch::ArchConfig;

/// Steps one representable `f64` up (toward `+∞`).
fn next_up(x: f64) -> f64 {
    if x.is_nan() || x == f64::INFINITY {
        return x;
    }
    if x == 0.0 {
        return f64::from_bits(1);
    }
    if x > 0.0 {
        f64::from_bits(x.to_bits() + 1)
    } else {
        f64::from_bits(x.to_bits() - 1)
    }
}

/// Steps one representable `f64` down (toward `-∞`).
fn next_down(x: f64) -> f64 {
    -next_up(-x)
}

/// IEEE left-fold of a charge list: `((c₀ + c₁) + c₂) + …`.
fn fold(charges: &[f64]) -> f64 {
    charges.iter().fold(0.0, |acc, c| acc + c)
}

/// Splits `total` into `naturals.len() + 1` non-negative charges whose
/// left-fold equals `total` **bit-exactly**.
///
/// Each natural cost is charged in order, clamped so the running fold
/// never exceeds `total` (earlier charges claim overlapped budget first);
/// the final charge is the residual that lands the fold exactly on
/// `total`. The residual is found by a monotone neighbor search around
/// `total - running`, with layered fallbacks ending in the always-exact
/// degenerate split `[0, …, 0, total]`.
///
/// ```
/// use fusemax_model::exact_split;
/// let charges = exact_split(10.0, &[3.0, 4.0]);
/// assert_eq!(charges.len(), 3);
/// assert_eq!(charges.iter().fold(0.0, |a, c| a + c), 10.0);
/// ```
pub fn exact_split(total: f64, naturals: &[f64]) -> Vec<f64> {
    let degenerate = |total: f64, n: usize| {
        let mut v = vec![0.0; n];
        v.push(total);
        v
    };
    if !total.is_finite() || total < 0.0 {
        return degenerate(total, naturals.len());
    }
    let mut charges = Vec::with_capacity(naturals.len() + 1);
    let mut running = 0.0f64;
    for &n in naturals {
        let mut c = n.max(0.0).min(total - running);
        if !c.is_finite() || c < 0.0 {
            c = 0.0;
        }
        // Rounding in `running + c` can overshoot the remaining budget;
        // step the charge down one ulp at a time until it fits.
        let mut guard = 0;
        while c > 0.0 && running + c > total {
            c = next_down(c).max(0.0);
            guard += 1;
            if guard > 128 {
                c = 0.0;
                break;
            }
        }
        running += c;
        charges.push(c);
    }
    // Residual: find r ≥ 0 with fl(running + r) == total by monotone
    // neighbor search around the rounded difference.
    let mut r = (total - running).max(0.0);
    let mut guard = 0;
    while running + r > total && r > 0.0 && guard < 128 {
        r = next_down(r).max(0.0);
        guard += 1;
    }
    guard = 0;
    while running + r < total && guard < 128 {
        r = next_up(r);
        guard += 1;
    }
    if running + r == total && r >= 0.0 {
        charges.push(r);
        return charges;
    }
    // Fallback: nudge the last nonzero charge down one ulp (freeing one
    // step of budget for the residual search) and retry once.
    if let Some(last) = charges.iter().rposition(|&c| c > 0.0) {
        let mut retry = charges.clone();
        retry[last] = next_down(retry[last]).max(0.0);
        let running = fold(&retry);
        let mut r = (total - running).max(0.0);
        let mut guard = 0;
        while running + r > total && r > 0.0 && guard < 128 {
            r = next_down(r).max(0.0);
            guard += 1;
        }
        guard = 0;
        while running + r < total && guard < 128 {
            r = next_up(r);
            guard += 1;
        }
        if running + r == total && r >= 0.0 {
            retry.push(r);
            return retry;
        }
    }
    // Terminal fallback: zero every charge; 0 + … + 0 + total == total
    // always.
    degenerate(total, naturals.len())
}

/// One node of an exact cost-attribution tree.
///
/// Invariant (enforced by [`CostNode::validate`]): for every node with
/// children, the IEEE left-fold of the children's totals equals the
/// node's total bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct CostNode {
    /// Phase or resource name (`attention`, `compute_2d`, `QK`, …).
    pub label: String,
    /// Cycles attributed to this node.
    pub total: f64,
    /// Exact decomposition of `total`; empty for leaves.
    pub children: Vec<CostNode>,
}

impl CostNode {
    /// A leaf node.
    pub fn leaf(label: impl Into<String>, total: f64) -> Self {
        CostNode { label: label.into(), total, children: Vec::new() }
    }

    /// Checks the exact-sum invariant recursively: every non-leaf node's
    /// children must left-fold to the node's total bit-for-bit.
    pub fn validate(&self) -> Result<(), String> {
        if !self.children.is_empty() {
            let sum = fold(&self.children.iter().map(|c| c.total).collect::<Vec<_>>());
            if sum.to_bits() != self.total.to_bits() {
                return Err(format!(
                    "{}: children fold to {sum:e}, node total is {:e}",
                    self.label, self.total
                ));
            }
        }
        for child in &self.children {
            child.validate()?;
        }
        Ok(())
    }

    /// Leaf stacks in inferno folded format: `(“root;…;leaf”, cycles)`
    /// per leaf, depth-first.
    pub fn folded(&self) -> Vec<(String, f64)> {
        let mut out = Vec::new();
        self.folded_into(String::new(), &mut out);
        out
    }

    fn folded_into(&self, prefix: String, out: &mut Vec<(String, f64)>) {
        let path =
            if prefix.is_empty() { self.label.clone() } else { format!("{prefix};{}", self.label) };
        if self.children.is_empty() {
            out.push((path, self.total));
        } else {
            for child in &self.children {
                child.folded_into(path.clone(), out);
            }
        }
    }
}

/// Builds the four resource children of a phase: `compute_2d` (optionally
/// decomposed per einsum), `compute_1d` (exposed only), `dram_bound`
/// (exposed memory cycles), and the `drain` residual
/// (fill/drain/warmup/interleave plus rounding).
fn resource_children(
    total: f64,
    busy_2d: f64,
    busy_1d: f64,
    dram_cycles: f64,
    einsums: &[(&'static str, f64)],
) -> Vec<CostNode> {
    let charges = exact_split(total, &[busy_2d, busy_1d, dram_cycles]);
    let mut compute_2d = CostNode::leaf("compute_2d", charges[0]);
    if !einsums.is_empty() {
        // All einsums but the last charge their natural cost; the last
        // absorbs the residual so the sub-split stays exact too.
        let naturals: Vec<f64> = einsums[..einsums.len() - 1].iter().map(|(_, c)| *c).collect();
        let sub = exact_split(charges[0], &naturals);
        compute_2d.children = einsums
            .iter()
            .zip(&sub)
            .map(|((label, _), &charge)| CostNode::leaf(*label, charge))
            .collect();
    }
    vec![
        compute_2d,
        CostNode::leaf("compute_1d", charges[1]),
        CostNode::leaf("dram_bound", charges[2]),
        CostNode::leaf("drain", charges[3]),
    ]
}

impl AttentionReport {
    /// The exact cost attribution of one attention layer on `arch`:
    /// resource children (`compute_2d` per einsum, exposed `compute_1d`,
    /// exposed `dram_bound`, `drain` residual) folding bit-exactly to
    /// [`AttentionReport::cycles`].
    pub fn cost_breakdown(&self, arch: &ArchConfig) -> CostNode {
        let m = Machine::of(arch);
        CostNode {
            label: "attention".into(),
            total: self.cycles,
            children: resource_children(
                self.cycles,
                self.busy_2d,
                self.busy_1d,
                self.dram_bytes / m.bpc,
                &self.einsum_2d,
            ),
        }
    }
}

impl E2eReport {
    /// The exact end-to-end cost attribution on `arch`: an `attention`
    /// subtree (per-einsum resource children, scaled over all layers) and
    /// a `linear` residual subtree, folding bit-exactly to
    /// [`E2eReport::cycles`].
    pub fn cost_breakdown(&self, arch: &ArchConfig) -> CostNode {
        let m = Machine::of(arch);
        let layers = self.layers as f64;
        let split = exact_split(self.cycles, &[self.attention.cycles * layers]);
        let scaled: Vec<(&'static str, f64)> =
            self.attention.einsum_2d.iter().map(|(n, c)| (*n, c * layers)).collect();
        let attention = CostNode {
            label: "attention".into(),
            total: split[0],
            children: resource_children(
                split[0],
                self.attention.busy_2d * layers,
                self.attention.busy_1d * layers,
                self.attention.dram_bytes / m.bpc * layers,
                &scaled,
            ),
        };
        let linear = CostNode {
            label: "linear".into(),
            total: split[1],
            children: resource_children(
                split[1],
                self.linear.busy_2d * layers,
                self.linear.busy_1d * layers,
                self.linear.dram_bytes / m.bpc * layers,
                &[],
            ),
        };
        CostNode { label: "e2e".into(), total: self.cycles, children: vec![attention, linear] }
    }
}

/// The roofline classification of one attention einsum: arithmetic
/// intensity (flops per compulsory DRAM byte) against the machine balance
/// of the 2D array.
#[derive(Debug, Clone, PartialEq)]
pub struct EinsumRoofline {
    /// Einsum label (`QK`, `LM`, `SLN`, `SLD`, `SLNV/AV`).
    pub label: &'static str,
    /// Floating-point operations (MACC = 2 flops).
    pub flops: f64,
    /// Compulsory operand traffic in bytes (each operand read/written
    /// once).
    pub bytes: f64,
    /// Arithmetic intensity, flops per byte.
    pub intensity: f64,
    /// Machine balance of the 2D array, flops per byte per cycle of DRAM.
    pub machine_balance: f64,
    /// `true` when the einsum sits left of the roofline ridge
    /// (`intensity < machine_balance`).
    pub memory_bound: bool,
}

/// Classifies the five attention einsums of `work` on `arch` against the
/// machine's roofline ridge.
///
/// Flop counts follow the cascade taxonomy (QK and AV are tensor
/// products at `2·E·L²` / `2·F·L²` flops per head; the softmax passes LM,
/// SLN, SLD are pointwise at ~1, ~7, and ~1 flops per point). Bytes are
/// the compulsory traffic: each operand tensor read or written exactly
/// once.
pub fn attention_roofline(work: &AttnWork, arch: &ArchConfig) -> Vec<EinsumRoofline> {
    let m = Machine::of(arch);
    let pts = work.points();
    let bh = work.batch_heads;
    let w = m.w;
    let machine_balance = 2.0 * m.pe2 / m.bpc;
    let classify = |label: &'static str, flops: f64, bytes: f64| {
        let intensity = if bytes > 0.0 { flops / bytes } else { f64::INFINITY };
        EinsumRoofline {
            label,
            flops,
            bytes,
            intensity,
            machine_balance,
            memory_bound: intensity < machine_balance,
        }
    };
    vec![
        classify("QK", 2.0 * work.e * pts, bh * w * 2.0 * work.e * work.l + w * pts),
        classify("LM", pts, 2.0 * w * pts),
        classify("SLN", 7.0 * pts, 2.0 * w * pts),
        classify("SLD", pts, 2.0 * w * pts),
        classify("SLNV/AV", 2.0 * work.f * pts, w * pts + 2.0 * bh * w * work.f * work.l),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ConfigKind;
    use crate::e2e::e2e_report;
    use crate::params::ModelParams;
    use fusemax_workloads::TransformerConfig;

    #[test]
    fn exact_split_is_bit_exact_on_adversarial_inputs() {
        let cases: Vec<(f64, Vec<f64>)> = vec![
            (10.0, vec![3.0, 4.0]),
            (1.0, vec![0.1, 0.2, 0.3]),
            (1e18, vec![1e18 / 3.0, 1e18 / 3.0, 1e18 / 3.0]),
            (
                std::f64::consts::PI,
                vec![
                    std::f64::consts::FRAC_PI_3,
                    // One ulp above PI/3, so the naive sum misses PI.
                    f64::from_bits(std::f64::consts::FRAC_PI_3.to_bits() + 1),
                ],
            ),
            (1e-300, vec![3e-301, 3e-301]),
            (0.0, vec![0.0, 0.0]),
            (5.0, vec![9.0, 9.0]),
            (7.0, vec![]),
            (1.0 + f64::EPSILON, vec![1.0, f64::EPSILON / 2.0]),
        ];
        for (total, naturals) in cases {
            let charges = exact_split(total, &naturals);
            assert_eq!(charges.len(), naturals.len() + 1);
            assert_eq!(fold(&charges).to_bits(), total.to_bits(), "fold({charges:?}) != {total:e}");
            for c in &charges {
                assert!(*c >= 0.0, "negative charge in {charges:?}");
            }
        }
    }

    #[test]
    fn exact_split_charges_naturals_when_they_fit() {
        let charges = exact_split(10.0, &[3.0, 4.0]);
        assert_eq!(charges, vec![3.0, 4.0, 3.0]);
        // Over-budget naturals clamp in order: earlier charges win.
        let clamped = exact_split(5.0, &[9.0, 9.0]);
        assert_eq!(clamped[0], 5.0);
        assert_eq!(clamped[1], 0.0);
    }

    #[test]
    fn attention_breakdowns_validate_for_every_kind_and_length() {
        let bert = TransformerConfig::bert();
        let params = ModelParams::default();
        for kind in ConfigKind::all() {
            for shift in [10, 14, 18] {
                let arch = kind.default_arch();
                let r = crate::attention_report(kind, &bert, 1 << shift, Some(&arch), &params);
                let tree = r.cost_breakdown(&arch);
                tree.validate().unwrap();
                assert_eq!(tree.total, r.cycles);
                assert_eq!(tree.children.len(), 4);
            }
        }
    }

    #[test]
    fn e2e_breakdowns_validate_and_split_attention_vs_linear() {
        let bert = TransformerConfig::bert();
        let params = ModelParams::default();
        for kind in ConfigKind::all() {
            let arch = kind.default_arch();
            let r = e2e_report(kind, &bert, 1 << 14, &params);
            let tree = r.cost_breakdown(&arch);
            tree.validate().unwrap();
            assert_eq!(tree.children.len(), 2);
            assert_eq!(tree.children[0].label, "attention");
            assert_eq!(tree.children[1].label, "linear");
            // The phase split tracks the report's own fraction closely.
            let frac = tree.children[0].total / tree.total;
            assert!((frac - r.attention_cycle_fraction()).abs() < 1e-6);
        }
    }

    #[test]
    fn einsum_children_reproduce_the_fig7_decomposition() {
        let bert = TransformerConfig::bert();
        let params = ModelParams::default();
        let kind = ConfigKind::FuseMaxBinding;
        let arch = kind.default_arch();
        let r = crate::attention_report(kind, &bert, 1 << 16, Some(&arch), &params);
        let tree = r.cost_breakdown(&arch);
        let compute_2d = &tree.children[0];
        assert_eq!(compute_2d.label, "compute_2d");
        assert_eq!(compute_2d.children.len(), 5);
        // QK and SLNV/AV dominate (Fig 7), and the sub-split is exact.
        let qk = compute_2d.children.iter().find(|c| c.label == "QK").unwrap().total;
        let av = compute_2d.children.iter().find(|c| c.label == "SLNV/AV").unwrap().total;
        assert!((qk + av) / compute_2d.total > 0.9);
        tree.validate().unwrap();
    }

    #[test]
    fn folded_stacks_cover_the_full_total() {
        let bert = TransformerConfig::bert();
        let params = ModelParams::default();
        let r = e2e_report(ConfigKind::FuseMaxBinding, &bert, 1 << 14, &params);
        let tree = r.cost_breakdown(&ConfigKind::FuseMaxBinding.default_arch());
        let folded = tree.folded();
        assert!(!folded.is_empty());
        for (stack, _) in &folded {
            assert!(stack.starts_with("e2e;"), "{stack}");
            assert!(!stack.contains(";;"), "{stack}");
        }
        let covered: f64 = folded.iter().map(|(_, v)| v).sum();
        assert!((covered - tree.total).abs() / tree.total < 1e-12);
    }

    #[test]
    fn roofline_classifies_tensor_products_compute_bound_at_long_length() {
        let work = AttnWork::from_workload(&TransformerConfig::bert(), 1 << 16);
        let arch = ConfigKind::FuseMaxBinding.default_arch();
        let points = attention_roofline(&work, &arch);
        assert_eq!(points.len(), 5);
        let qk = points.iter().find(|p| p.label == "QK").unwrap();
        let lm = points.iter().find(|p| p.label == "LM").unwrap();
        // QK at L=64K has intensity ~E/w per point-side; the pointwise
        // softmax passes sit far left of the ridge.
        assert!(lm.memory_bound);
        assert!(qk.intensity > lm.intensity);
        for p in &points {
            assert_eq!(p.memory_bound, p.intensity < p.machine_balance);
            assert!(p.flops > 0.0 && p.bytes > 0.0);
        }
    }
}
