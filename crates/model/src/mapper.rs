//! A Timeloop-style mapping search for GEMMs on the spatial architecture.
//!
//! The paper "use\[s\] Timeloop to search for efficient mappings to perform
//! QK and AV" in the unfused baseline and "for optimal mappings for these
//! linear layers" (§VI-A/§VI-C). This module reproduces that role for the
//! class of kernels those searches cover: a single dense GEMM
//! `Z[m,n] = A[k,m] × B[k,n]` staged through the global buffer.
//!
//! A [`GemmMapping`] picks buffer-level tile sizes `(K1, M1, N1)`. The
//! standard tiled-GEMM traffic model applies:
//!
//! * `A` is re-read once per `N`-tile pass: `K·M·⌈N/N1⌉` words;
//! * `B` is re-read once per `M`-tile pass: `K·N·⌈M/M1⌉` words;
//! * `Z` is written once if `K` is untiled, otherwise partial sums spill:
//!   `M·N·(2·⌈K/K1⌉ − 1)` words.
//!
//! The search enumerates power-of-two tile candidates subject to the
//! buffer-capacity constraint (with double buffering) and keeps the
//! mapping with the least DRAM traffic, breaking ties toward larger tiles.

use crate::common::Machine;
use fusemax_arch::ArchConfig;
use std::fmt;

/// A dense GEMM `Z[m,n] = A[k,m] × B[k,n]` (paper Einsum 1's shape).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmProblem {
    /// Shared (reduction) rank extent.
    pub k: usize,
    /// Output rows.
    pub m: usize,
    /// Output columns.
    pub n: usize,
}

impl GemmProblem {
    /// Creates a problem; all extents must be positive.
    ///
    /// # Panics
    ///
    /// Panics when any extent is zero.
    pub fn new(k: usize, m: usize, n: usize) -> Self {
        assert!(k > 0 && m > 0 && n > 0, "GEMM extents must be positive");
        Self { k, m, n }
    }

    /// Multiply–accumulate count.
    pub fn maccs(&self) -> f64 {
        self.k as f64 * self.m as f64 * self.n as f64
    }

    /// Compulsory traffic in words: every operand once, the output once.
    pub fn compulsory_words(&self) -> f64 {
        (self.k * self.m + self.k * self.n + self.m * self.n) as f64
    }
}

impl fmt::Display for GemmProblem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Z[{m},{n}] = A[{k},{m}] × B[{k},{n}]", k = self.k, m = self.m, n = self.n)
    }
}

/// One point in the mapping space: buffer-level tile sizes plus its cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GemmMapping {
    /// Tile extent along `K`.
    pub tile_k: usize,
    /// Tile extent along `M`.
    pub tile_m: usize,
    /// Tile extent along `N`.
    pub tile_n: usize,
    /// Total DRAM traffic in bytes under this mapping.
    pub dram_bytes: f64,
    /// Compute cycles on the 2D array.
    pub compute_cycles: f64,
    /// Roofline latency in cycles.
    pub cycles: f64,
}

impl GemmMapping {
    /// `true` when the mapping achieves compulsory-only traffic.
    pub fn is_compulsory(&self, problem: &GemmProblem, word_bytes: f64) -> bool {
        self.dram_bytes <= problem.compulsory_words() * word_bytes * (1.0 + 1e-9)
    }
}

impl fmt::Display for GemmMapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tiles K1={} M1={} N1={}: {:.3e} B DRAM, {:.3e} cycles",
            self.tile_k, self.tile_m, self.tile_n, self.dram_bytes, self.cycles
        )
    }
}

/// Power-of-two candidates up to `extent` (always including `extent`).
fn tile_candidates(extent: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut t = 1usize;
    while t < extent {
        out.push(t);
        t *= 2;
    }
    out.push(extent);
    out
}

/// Evaluates one tiling's traffic and latency. A fully-resident tensor
/// (its tile covers the whole tensor) is stationary: loaded exactly once.
fn evaluate(problem: &GemmProblem, m: &Machine, k1: usize, m1: usize, n1: usize) -> GemmMapping {
    let (k, mm, n) = (problem.k as f64, problem.m as f64, problem.n as f64);
    let passes_n = (n / n1 as f64).ceil();
    let passes_m = (mm / m1 as f64).ceil();
    let passes_k = (k / k1 as f64).ceil();
    let a_resident = k1 == problem.k && m1 == problem.m;
    let b_resident = k1 == problem.k && n1 == problem.n;
    let words_a = k * mm * if a_resident { 1.0 } else { passes_n };
    let words_b = k * n * if b_resident { 1.0 } else { passes_m };
    let words_z = mm * n * (2.0 * passes_k - 1.0);
    let dram_bytes = (words_a + words_b + words_z) * m.w;
    let compute_cycles = problem.maccs() / m.pe2;
    let cycles = compute_cycles.max(dram_bytes / m.bpc);
    GemmMapping { tile_k: k1, tile_m: m1, tile_n: n1, dram_bytes, compute_cycles, cycles }
}

/// Searches the tiling space for the minimum-traffic mapping that fits the
/// global buffer (double-buffered: two copies of each live tile).
///
/// Falls back to the smallest tiling if nothing fits (pathologically small
/// buffers).
///
/// # Example
///
/// ```
/// use fusemax_arch::ArchConfig;
/// use fusemax_model::mapper::{search_gemm_mapping, GemmProblem};
///
/// // A BERT FFN matmul at L=4K, B=64: K=768, M=3072, N=262144.
/// let problem = GemmProblem::new(768, 3072, 1 << 18);
/// let mapping = search_gemm_mapping(&problem, &ArchConfig::fusemax_cloud());
/// // The 16 MB buffer is big enough to reach compulsory-only traffic.
/// assert!(mapping.is_compulsory(&problem, 2.0));
/// ```
pub fn search_gemm_mapping(problem: &GemmProblem, arch: &ArchConfig) -> GemmMapping {
    let m = Machine::of(arch);
    let capacity_words = m.buf / m.w / 2.0; // double buffering
    let mut best: Option<GemmMapping> = None;
    for &k1 in &tile_candidates(problem.k) {
        for &m1 in &tile_candidates(problem.m) {
            for &n1 in &tile_candidates(problem.n) {
                let resident = (k1 * m1 + k1 * n1 + m1 * n1) as f64;
                if resident > capacity_words {
                    continue;
                }
                let candidate = evaluate(problem, &m, k1, m1, n1);
                let better = match &best {
                    None => true,
                    Some(b) => {
                        candidate.dram_bytes < b.dram_bytes * (1.0 - 1e-12)
                            || (candidate.dram_bytes <= b.dram_bytes
                                && (k1, m1, n1) > (b.tile_k, b.tile_m, b.tile_n))
                    }
                };
                if better {
                    best = Some(candidate);
                }
            }
        }
    }
    best.unwrap_or_else(|| evaluate(problem, &m, 1, 1, 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud() -> ArchConfig {
        ArchConfig::fusemax_cloud()
    }

    #[test]
    fn candidates_cover_extent() {
        assert_eq!(tile_candidates(8), vec![1, 2, 4, 8]);
        assert_eq!(tile_candidates(6), vec![1, 2, 4, 6]);
        assert_eq!(tile_candidates(1), vec![1]);
    }

    #[test]
    fn traffic_is_at_least_compulsory() {
        let p = GemmProblem::new(512, 512, 1 << 16);
        let m = search_gemm_mapping(&p, &cloud());
        assert!(m.dram_bytes >= p.compulsory_words() * 2.0 - 1.0);
    }

    #[test]
    fn large_buffer_reaches_compulsory_traffic() {
        // A tile of B plus a K-strip of A fits easily: traffic is inputs +
        // output exactly once.
        let p = GemmProblem::new(768, 768, 1 << 14);
        let m = search_gemm_mapping(&p, &cloud());
        assert!(m.is_compulsory(&p, 2.0), "{m}");
    }

    #[test]
    fn shrinking_the_buffer_increases_traffic() {
        let p = GemmProblem::new(2048, 2048, 1 << 15);
        let big = search_gemm_mapping(&p, &cloud());
        let mut small_arch = cloud();
        small_arch.global_buffer_bytes = 64 << 10; // 64 KB
        let small = search_gemm_mapping(&p, &small_arch);
        assert!(
            small.dram_bytes > 2.0 * big.dram_bytes,
            "small {:.3e} vs big {:.3e}",
            small.dram_bytes,
            big.dram_bytes
        );
    }

    #[test]
    fn mapping_respects_the_capacity_constraint() {
        let p = GemmProblem::new(4096, 4096, 4096);
        let arch = cloud();
        let m = search_gemm_mapping(&p, &arch);
        let words = (m.tile_k * m.tile_m + m.tile_k * m.tile_n + m.tile_m * m.tile_n) as f64;
        assert!(words <= arch.global_buffer_bytes as f64 / 2.0 / 2.0);
    }

    #[test]
    fn weight_stationary_gemms_are_compute_bound() {
        // An FFN-shaped GEMM (weights resident, a million tokens streamed)
        // reaches the compute roofline: the arithmetic intensity is D MACCs
        // per streamed word.
        let p = GemmProblem::new(768, 3072, 1 << 20);
        let m = search_gemm_mapping(&p, &cloud());
        assert!((m.cycles - m.compute_cycles).abs() < 1e-6 * m.cycles, "{m}");
        assert!(m.is_compulsory(&p, 2.0), "{m}");
    }

    #[test]
    fn search_is_deterministic() {
        let p = GemmProblem::new(768, 3072, 1 << 16);
        let a = search_gemm_mapping(&p, &cloud());
        let b = search_gemm_mapping(&p, &cloud());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_extent_panics() {
        let _ = GemmProblem::new(0, 1, 1);
    }

    #[test]
    fn display_forms() {
        let p = GemmProblem::new(2, 3, 4);
        assert!(p.to_string().contains("A[2,3]"));
        let m = search_gemm_mapping(&p, &cloud());
        assert!(m.to_string().contains("tiles"));
    }
}
