//! Workload descriptors and model output reports.

use crate::config::ConfigKind;
use fusemax_arch::EnergyBreakdown;
use fusemax_workloads::TransformerConfig;
use std::fmt;

/// One layer's attention workload: `B·H` independent `E×M×P×F` attention
/// instances with `M = P = L` (self-attention).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttnWork {
    /// Attention instances per layer (batch × heads).
    pub batch_heads: f64,
    /// Query/key embedding per head (`E`).
    pub e: f64,
    /// Value embedding per head (`F`, equal to `E` in these models).
    pub f: f64,
    /// Sequence length (`M = P = L`).
    pub l: f64,
}

impl AttnWork {
    /// Builds the per-layer attention workload of `cfg` at `seq_len`.
    pub fn from_workload(cfg: &TransformerConfig, seq_len: usize) -> Self {
        Self {
            batch_heads: cfg.batch_heads() as f64,
            e: cfg.head_dim as f64,
            f: cfg.head_dim as f64,
            l: seq_len as f64,
        }
    }

    /// Softmax iteration-space points per layer (`B·H·L²`).
    pub fn points(&self) -> f64 {
        self.batch_heads * self.l * self.l
    }

    /// Tensor-product MACCs per layer (`B·H·(E+F)·L²`).
    pub fn matmul_maccs(&self) -> f64 {
        (self.e + self.f) * self.points()
    }

    /// Bytes to read Q, K, V and write AV once, per layer.
    pub fn input_output_bytes(&self, word_bytes: f64) -> f64 {
        self.batch_heads * word_bytes * (3.0 * self.e * self.l + self.f * self.l)
    }
}

/// The modeled behavior of one layer of attention on one configuration.
#[derive(Debug, Clone)]
pub struct AttentionReport {
    /// Which configuration produced this report.
    pub kind: ConfigKind,
    /// Total cycles for the layer (all heads, full batch).
    pub cycles: f64,
    /// Cycles the 2D array spends computing.
    pub busy_2d: f64,
    /// Cycles the 1D array spends computing.
    pub busy_1d: f64,
    /// DRAM traffic in bytes.
    pub dram_bytes: f64,
    /// Global-buffer traffic in bytes.
    pub gbuf_bytes: f64,
    /// Energy breakdown for the layer.
    pub energy: EnergyBreakdown,
    /// 2D-array busy cycles attributed to each Einsum group (Fig 7):
    /// `QK`, `LM`, `SLN`, `SLD`, `SLNV/AV`.
    pub einsum_2d: Vec<(&'static str, f64)>,
}

impl AttentionReport {
    /// 2D-array utilization (busy / total).
    pub fn util_2d(&self) -> f64 {
        if self.cycles == 0.0 {
            0.0
        } else {
            self.busy_2d / self.cycles
        }
    }

    /// 1D-array utilization.
    pub fn util_1d(&self) -> f64 {
        if self.cycles == 0.0 {
            0.0
        } else {
            self.busy_1d / self.cycles
        }
    }

    /// Convenience accessor matching the doc examples.
    #[doc(hidden)]
    pub fn cycles(&self) -> f64 {
        self.cycles
    }
}

impl fmt::Display for AttentionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<14} cycles={:.3e} util2D={:.2} util1D={:.2} dram={:.2e}B energy={:.2e}pJ",
            self.kind.label(),
            self.cycles,
            self.util_2d(),
            self.util_1d(),
            self.dram_bytes,
            self.energy.total_pj()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attn_work_counts() {
        let bert = TransformerConfig::bert();
        let w = AttnWork::from_workload(&bert, 1024);
        assert_eq!(w.batch_heads, 768.0);
        assert_eq!(w.e, 64.0);
        assert_eq!(w.points(), 768.0 * 1024.0 * 1024.0);
        assert_eq!(w.matmul_maccs(), 128.0 * w.points());
        // Q + K + V + AV = 4 E·L words of 2 bytes each.
        assert_eq!(w.input_output_bytes(2.0), 768.0 * 2.0 * 4.0 * 64.0 * 1024.0);
    }

    #[test]
    fn utilizations_guard_division_by_zero() {
        let r = AttentionReport {
            kind: ConfigKind::Flat,
            cycles: 0.0,
            busy_2d: 0.0,
            busy_1d: 0.0,
            dram_bytes: 0.0,
            gbuf_bytes: 0.0,
            energy: EnergyBreakdown::default(),
            einsum_2d: vec![],
        };
        assert_eq!(r.util_2d(), 0.0);
        assert_eq!(r.util_1d(), 0.0);
    }
}
