//! Tunable modeling parameters (all defaults documented in DESIGN.md §1.9).

/// Knobs of the analytical model, exposed for the ablation benches.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelParams {
    /// 1D ops charged per softmax point in the *baseline* (unfused/FLAT)
    /// models: one per Einsum iteration-space point (max, sub-exp, add,
    /// div), the Timeloop convention (DESIGN.md §1.9 note 1).
    pub baseline_softmax_ops_per_point: f64,
    /// MACCs per exponential on FuseMax arrays (§V cites a 6-MACC design).
    pub exp_maccs: f64,
    /// Fraction of the global buffer usable for tensor residency (the rest
    /// holds staging/double buffers).
    pub buffer_usable_frac: f64,
    /// FLAT's minimum row-block granularity (its dataflow searches row
    /// granularities; below this the pipeline cannot be kept busy).
    pub flat_min_rows: usize,
    /// `M0` tile used when running the 1-pass cascade on the FLAT
    /// architecture (+Cascade), set by FLAT's row granularity.
    pub cascade_tile_m0: usize,
    /// Extra cycles per epoch for the interleaved binding (+Binding).
    pub interleave_overhead_cycles: f64,
    /// Software-pipeline warm-up depth in epochs, paid per attention head
    /// (+Binding).
    pub pipeline_warmup_epochs: f64,
    /// Fill plus drain cycles charged per tile by the *serialized* binding
    /// (+Architecture), as a multiple of `array_rows + array_cols`.
    pub fill_drain_factor: f64,
}

impl Default for ModelParams {
    fn default() -> Self {
        Self {
            baseline_softmax_ops_per_point: 4.0,
            exp_maccs: 6.0,
            buffer_usable_frac: 0.9,
            flat_min_rows: 64,
            cascade_tile_m0: 64,
            interleave_overhead_cycles: 2.0,
            pipeline_warmup_epochs: 4.0,
            fill_drain_factor: 1.0,
        }
    }
}

impl ModelParams {
    /// Cycles one sub-then-exp occupies a FuseMax PE (1 subtract plus the
    /// MACC chain).
    pub fn sub_exp_cycles(&self) -> f64 {
        1.0 + self.exp_maccs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_design_doc() {
        let p = ModelParams::default();
        assert_eq!(p.baseline_softmax_ops_per_point, 4.0);
        assert_eq!(p.exp_maccs, 6.0);
        assert_eq!(p.sub_exp_cycles(), 7.0);
        assert_eq!(p.flat_min_rows, 64);
    }
}
