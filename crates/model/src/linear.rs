//! The transformer's non-attention layers (projections, deprojection, FFN,
//! norms) — identical mappings for all configurations (§VI-C).

use crate::common::{rf_bytes, roofline, Machine};
use crate::mapper::{search_gemm_mapping, GemmMapping, GemmProblem};
use crate::params::ModelParams;
use fusemax_arch::{ArchConfig, EnergyBreakdown, EnergyTable};
use fusemax_workloads::TransformerConfig;

/// Modeled cost of one encoder layer's linear and elementwise parts.
#[derive(Debug, Clone)]
pub struct LinearReport {
    /// Total cycles.
    pub cycles: f64,
    /// 2D-array busy cycles (the matmuls).
    pub busy_2d: f64,
    /// 1D-array busy cycles (norms, residuals, activation).
    pub busy_1d: f64,
    /// DRAM traffic in bytes.
    pub dram_bytes: f64,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
    /// The searched mapping per GEMM: QKV projection, deprojection,
    /// FFN up, FFN down.
    pub gemm_mappings: Vec<GemmMapping>,
}

/// The four weight-times-activation GEMMs of one encoder layer, with
/// `N = B·L` tokens: Q/K/V projections (fused as one `D×3D` GEMM),
/// deprojection (`D×D`), and the two FFN matmuls (`D×Dff`, `Dff×D`).
pub fn layer_gemms(cfg: &TransformerConfig, seq_len: usize) -> Vec<GemmProblem> {
    let d = cfg.d_model;
    let dff = cfg.ffn_dim;
    let tokens = cfg.batch * seq_len;
    vec![
        GemmProblem::new(d, 3 * d, tokens),
        GemmProblem::new(d, d, tokens),
        GemmProblem::new(d, dff, tokens),
        GemmProblem::new(dff, d, tokens),
    ]
}

/// Models the weight-times-activation layers of one encoder layer.
///
/// Each GEMM's staging through the global buffer is chosen by the
/// Timeloop-style [`search_gemm_mapping`] (the paper: "We use Timeloop to
/// search for optimal mappings for these linear layers and use the same
/// mappings for all three accelerator configurations"); the elementwise
/// norms/residuals/ReLU stream on the 1D array concurrently (§IV-A: "the
/// additional non-linearities have negligible impact").
pub fn linear_report(
    cfg: &TransformerConfig,
    seq_len: usize,
    arch: &ArchConfig,
    _params: &ModelParams,
) -> LinearReport {
    let m = Machine::of(arch);
    let b = cfg.batch as f64;
    let d = cfg.d_model as f64;
    let dff = cfg.ffn_dim as f64;
    let l = seq_len as f64;
    let w = m.w;

    let problems = layer_gemms(cfg, seq_len);
    let gemm_mappings: Vec<GemmMapping> =
        problems.iter().map(|p| search_gemm_mapping(p, arch)).collect();
    let maccs: f64 = problems.iter().map(|p| p.maccs()).sum();
    let c2d = maccs / m.pe2;
    let dram_bytes: f64 = gemm_mappings.iter().map(|g| g.dram_bytes).sum();

    // Elementwise work: two norms (~5 ops/elem), two residuals, one ReLU.
    let other_ops = b * l * (12.0 * d + dff);
    let c1d = other_ops / m.pe1;

    let cycles = roofline(c2d, c1d, dram_bytes / m.bpc);

    // Everything staged through the buffer once on the way in and once on
    // the way out.
    let gbuf_bytes = 2.0 * dram_bytes;
    let et = EnergyTable::default();
    let energy = EnergyBreakdown {
        macc_2d_pj: maccs * et.macc_pj,
        vector_1d_pj: other_ops * et.vector_op_pj,
        rf_pj: rf_bytes(maccs, w) * et.rf_pj_per_byte,
        gbuf_pj: gbuf_bytes * et.gbuf_pj_per_byte,
        dram_pj: dram_bytes * et.dram_pj_per_byte,
    };

    LinearReport { cycles, busy_2d: c2d, busy_1d: c1d, dram_bytes, energy, gemm_mappings }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(l: usize) -> LinearReport {
        linear_report(
            &TransformerConfig::bert(),
            l,
            &ArchConfig::fusemax_cloud(),
            &ModelParams::default(),
        )
    }

    #[test]
    fn linear_cycles_scale_linearly_with_length() {
        let a = report(1 << 12);
        let b = report(1 << 16);
        let ratio = b.cycles / a.cycles;
        assert!((14.0..18.0).contains(&ratio), "linear scaling, got {ratio}");
    }

    #[test]
    fn matmuls_dominate_elementwise_work() {
        let r = report(1 << 14);
        assert!(r.busy_2d > 2.0 * r.busy_1d);
        // The elementwise work hides under the matmul roofline entirely.
        assert!(r.cycles >= r.busy_2d);
        assert!(r.busy_1d < r.cycles);
    }

    #[test]
    fn weights_amortize_over_the_batch() {
        // Activations dominate DRAM traffic at B=64.
        let cfg = TransformerConfig::bert();
        let m = Machine::of(&ArchConfig::fusemax_cloud());
        let weight_bytes = m.w
            * (4.0 * (cfg.d_model as f64).powi(2) + 2.0 * cfg.d_model as f64 * cfg.ffn_dim as f64);
        let r = report(1 << 14);
        assert!(r.dram_bytes > 10.0 * weight_bytes);
    }

    #[test]
    fn searched_mappings_reach_compulsory_traffic_on_the_cloud_chip() {
        // The 16 MB buffer suffices for every layer GEMM: the mapper should
        // find an inputs-once/outputs-once staging.
        let cfg = TransformerConfig::bert();
        let problems = layer_gemms(&cfg, 1 << 14);
        let r = report(1 << 14);
        for (p, g) in problems.iter().zip(&r.gemm_mappings) {
            assert!(g.is_compulsory(p, 2.0), "{p}: {g}");
        }
        assert_eq!(r.gemm_mappings.len(), 4);
    }

    #[test]
    fn energy_is_positive_and_compute_heavy() {
        let r = report(1 << 14);
        assert!(r.energy.total_pj() > 0.0);
        assert!(r.energy.compute_fraction() > 0.4);
    }
}
