#![warn(missing_docs)]

//! Analytical performance/energy models of the five evaluated accelerator
//! configurations (the Timeloop substitute; §VI).
//!
//! Five configurations, matching the paper's figures:
//!
//! * [`ConfigKind::Unfused`] — three sequential phases (QK, 3-pass softmax
//!   streaming `M` fibers, AV) with inter-phase DRAM spills;
//! * [`ConfigKind::Flat`] — FLAT's row-granularity fusion: QK/SN rows
//!   resident on chip, K/V resident while they fit and re-streamed (or
//!   QK/SN/A spilled) once they do not — the source of FLAT's
//!   memory-bandwidth cliff at long sequence lengths;
//! * [`ConfigKind::FuseMaxCascade`] (+Cascade) — the 1-pass cascade on the
//!   FLAT architecture: sequence-length-independent footprint but more 1D
//!   work than FLAT's 3-pass softmax;
//! * [`ConfigKind::FuseMaxArch`] (+Architecture) — FuseMax PEs (exp on the
//!   2D array as 6 chained MACCs) with a tile-serialized binding that pays
//!   fills and drains;
//! * [`ConfigKind::FuseMaxBinding`] (+Binding) — Fig 4's software-pipelined,
//!   intra-epoch-interleaved binding: epoch length is the *max* of the 2D
//!   and 1D tile work, which the cascade balances almost exactly (§V: the
//!   green and blue periods "take almost the same number of cycles").
//!
//! Latency follows a roofline over fused regions — `max(2D compute, 1D
//! compute, DRAM)` — with explicit DRAM/global-buffer traffic accounting
//! feeding [`fusemax_arch::EnergyBreakdown`]s. Modeling calibration choices
//! are documented in DESIGN.md §1.9.
//!
//! # Example
//!
//! ```
//! use fusemax_model::{attention_report, ConfigKind, ModelParams};
//! use fusemax_workloads::TransformerConfig;
//!
//! let bert = TransformerConfig::bert();
//! let params = ModelParams::default();
//! let flat = attention_report(ConfigKind::Flat, &bert, 1 << 16, None, &params);
//! let fusemax = attention_report(ConfigKind::FuseMaxBinding, &bert, 1 << 16, None, &params);
//!
//! // FuseMax wins by several-fold at 64K and saturates both arrays.
//! assert!(flat.cycles / fusemax.cycles > 4.0);
//! assert!(fusemax.util_2d() > 0.9 && fusemax.util_1d() > 0.9);
//! ```

mod breakdown;
mod common;
mod config;
mod e2e;
mod flat;
mod fusemax;
mod linear;
pub mod mapper;
mod params;
mod report;
mod unfused;

pub use breakdown::{attention_roofline, exact_split, CostNode, EinsumRoofline};
pub use config::ConfigKind;
pub use e2e::{e2e_report, e2e_report_on, E2eReport};
pub use flat::flat_dram_floor_per_head;
pub use linear::{layer_gemms, linear_report, LinearReport};
pub use mapper::{search_gemm_mapping, GemmMapping, GemmProblem};
pub use params::ModelParams;
pub use report::{AttentionReport, AttnWork};

use fusemax_arch::ArchConfig;
use fusemax_workloads::TransformerConfig;

/// Models one layer's attention on the given configuration.
///
/// `arch` overrides the configuration's default architecture (used by the
/// Fig 12 design-space sweep); pass `None` for the paper's cloud setup.
pub fn attention_report(
    kind: ConfigKind,
    workload: &TransformerConfig,
    seq_len: usize,
    arch: Option<&ArchConfig>,
    params: &ModelParams,
) -> AttentionReport {
    let default_arch = kind.default_arch();
    let arch = arch.unwrap_or(&default_arch);
    let work = AttnWork::from_workload(workload, seq_len);
    match kind {
        ConfigKind::Unfused => unfused::model(&work, arch, params),
        ConfigKind::Flat => flat::model(&work, arch, params),
        ConfigKind::FuseMaxCascade => fusemax::cascade_on_flat(&work, arch, params),
        ConfigKind::FuseMaxArch => fusemax::serialized(&work, arch, params),
        ConfigKind::FuseMaxBinding => fusemax::pipelined(&work, arch, params),
    }
}
