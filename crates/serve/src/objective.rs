//! The DSE bridge: score designs by served-traffic merit under an SLA —
//! **inside** the search loop (as a [`fusemax_dse::Objective`]) or as a
//! post-hoc re-ranking of a finished sweep ([`ServeObjective::rank`]).
//!
//! Fixed-sequence-length latency ranking always crowns the biggest chip.
//! Under real traffic the question changes: once a design keeps up with
//! the offered load inside the SLA, extra silicon buys nothing — so the
//! serving-aware merit is **SLA-feasible goodput per total cm²** of
//! fleet silicon, and the winner is typically a smaller chip (or a fleet
//! of them) rather than the latency winner. Designs that miss the SLA
//! rank below every design that meets it, ordered by how badly they miss
//! (p99 TTFT).
//!
//! Scoring is fleet-aware: a design point whose fleet axis is not the
//! singleton is served by [`crate::Fleet`] (replicated or disaggregated),
//! and its [`Evaluation::area_cm2`] already accounts for every chip — so
//! "goodput per cm²" compares one big chip against N small ones at equal
//! silicon, which is exactly the trade the fleet axis searches.

use crate::fault::FaultSpec;
use crate::fleet::Fleet;
use crate::report::ServeReport;
use crate::traffic::Trace;
use fusemax_dse::{DesignPoint, Evaluation, MeritScore, Objective, PointKey};
use fusemax_model::ModelParams;
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// A serving-latency service-level agreement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sla {
    /// Ceiling on 99th-percentile time to first token, in seconds.
    pub p99_ttft_s: f64,
}

impl Sla {
    /// An SLA bounding p99 TTFT.
    pub fn p99_ttft(seconds: f64) -> Self {
        Sla { p99_ttft_s: seconds }
    }

    /// `true` when `report` satisfies every bound.
    pub fn met_by(&self, report: &ServeReport) -> bool {
        report.ttft.p99 <= self.p99_ttft_s
    }
}

/// How a multi-scenario (fault-aware) objective folds per-scenario
/// merits into one ranking value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioRanking {
    /// Rank by the *minimum* scenario merit — the design is only as good
    /// as its worst failure. This is the availability-first choice: it
    /// rewards redundancy (an N+1 fleet keeps serving through any single
    /// failure) over raw fault-free efficiency.
    WorstCase,
    /// Rank by the *mean* scenario merit — each scenario weighted
    /// equally, trading some worst-case protection for average goodput.
    Expected,
}

/// One design's serving score under a [`ServeObjective`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServeScore {
    /// Whether the SLA held over the whole trace.
    pub meets_sla: bool,
    /// Completed requests per second per cm² of **total fleet silicon**
    /// — the serving-cost merit used to rank SLA-feasible designs.
    pub goodput_per_cm2: f64,
    /// The full (fleet-level, when the point's fleet axis is not the
    /// singleton) simulation report behind the score.
    pub report: ServeReport,
}

/// Scores design points by simulating a traffic trace against them.
///
/// Two modes of use:
///
/// * **In the loop** — hand it to the sweeper
///   ([`fusemax_dse::Sweeper::with_objective`]) and every search
///   strategy optimizes SLA-feasible goodput per cm² *while it
///   searches*, with the fleet axis searchable like any other. Scores
///   are memoized per design point, so a point revisited across
///   generations pays the trace replay once.
/// * **Post hoc** — [`ServeObjective::rank`] re-ranks a finished sweep's
///   evaluations, best server first.
///
/// # Example
///
/// ```
/// use fusemax_model::ModelParams;
/// use fusemax_serve::{Arrivals, LengthMix, ServeObjective, Sla, TrafficSpec};
///
/// let trace = TrafficSpec {
///     arrivals: Arrivals::Poisson { rate_per_s: 20.0 },
///     prompt_mix: LengthMix::fixed(512),
///     output_mix: LengthMix::fixed(8),
///     requests: 30,
/// }
/// .generate(5);
/// let objective = ServeObjective::new(trace, Sla::p99_ttft(0.5));
///
/// let space = fusemax_dse::DesignSpace::new()
///     .with_workloads([fusemax_workloads::TransformerConfig::bert()]);
/// let outcome = fusemax_dse::Sweeper::new(ModelParams::default()).sweep(&space);
/// let ranked = objective.rank(&outcome.evaluations, &ModelParams::default());
/// assert_eq!(ranked.len(), outcome.evaluations.len());
/// ```
#[derive(Debug)]
pub struct ServeObjective {
    trace: Trace,
    sla: Sla,
    params: ModelParams,
    parallel: bool,
    // Availability-aware mode: when non-empty, every design is scored
    // across all of these seeded fault scenarios (include FaultSpec::none
    // for the fault-free baseline) and ranked per `ranking`.
    scenarios: Vec<FaultSpec>,
    ranking: ScenarioRanking,
    name: String,
    // Trace replays are pure per design point, so in-loop scoring keeps
    // a memo: genetic/annealing walkers revisit points freely without
    // paying the simulation twice.
    memo: Mutex<HashMap<PointKey, ServeScore>>,
}

impl Clone for ServeObjective {
    fn clone(&self) -> Self {
        ServeObjective {
            trace: self.trace.clone(),
            sla: self.sla,
            params: self.params.clone(),
            parallel: self.parallel,
            scenarios: self.scenarios.clone(),
            ranking: self.ranking,
            name: self.name.clone(),
            memo: Mutex::new(self.memo.lock().expect("serve objective memo poisoned").clone()),
        }
    }
}

impl ServeObjective {
    /// An objective serving `trace` under `sla`. In-loop scoring uses
    /// [`ModelParams::default`] unless overridden with
    /// [`ServeObjective::with_params`]; ranking simulates the frontier
    /// designs on all cores by default
    /// ([`ServeObjective::with_parallelism`]).
    pub fn new(trace: Trace, sla: Sla) -> Self {
        ServeObjective {
            trace,
            sla,
            params: ModelParams::default(),
            parallel: true,
            scenarios: Vec::new(),
            ranking: ScenarioRanking::WorstCase,
            name: "sla-goodput-per-cm2".to_string(),
            memo: Mutex::new(HashMap::new()),
        }
    }

    /// Switches the objective into **availability-aware** mode: every
    /// design is replayed once per scenario in `scenarios` (include
    /// [`FaultSpec::none`] to keep the fault-free baseline in the set)
    /// and scored by the `ranking` fold over per-scenario merits.
    ///
    /// Per scenario, the merit is completions per second per cm² over a
    /// **common horizon** — `makespan.max(trace end)` — so a design that
    /// sheds its queue early cannot inflate goodput by finishing sooner,
    /// and a design is only SLA-feasible when it meets the SLA under
    /// *every* scenario. Replays stay deterministic: scenarios are
    /// scored in order by pure simulations, so parallel and serial
    /// ranking remain bit-identical.
    ///
    /// Passing an empty `scenarios` restores the fault-free objective
    /// exactly.
    pub fn with_fault_scenarios(
        mut self,
        scenarios: impl IntoIterator<Item = FaultSpec>,
        ranking: ScenarioRanking,
    ) -> Self {
        self.scenarios = scenarios.into_iter().collect();
        self.ranking = ranking;
        self.name = if self.scenarios.is_empty() {
            "sla-goodput-per-cm2".to_string()
        } else {
            match ranking {
                ScenarioRanking::WorstCase => "worst-case-sla-goodput-per-cm2".to_string(),
                ScenarioRanking::Expected => "expected-sla-goodput-per-cm2".to_string(),
            }
        };
        self.memo.lock().expect("serve objective memo poisoned").clear();
        self
    }

    /// The fault scenarios scoring replays (empty in fault-free mode).
    pub fn scenarios(&self) -> &[FaultSpec] {
        &self.scenarios
    }

    /// How per-scenario merits fold into the ranking value (only
    /// meaningful when [`ServeObjective::scenarios`] is non-empty).
    pub fn ranking(&self) -> ScenarioRanking {
        self.ranking
    }

    /// Sets the model parameters in-loop scoring simulates with — match
    /// them to the sweeper's so the serving merit and the latency
    /// numbers describe the same hardware.
    pub fn with_params(mut self, params: ModelParams) -> Self {
        self.params = params;
        self
    }

    /// Switches between parallel (`true`, the default) and serial
    /// per-design simulation in [`ServeObjective::rank`]. Results are
    /// bit-identical either way — each design's replay is an independent
    /// pure function, and the collected order is the input order — so the
    /// switch only trades wall-clock time (it exists so the parity bench
    /// can time both paths).
    pub fn with_parallelism(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// The trace driving the simulations.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The SLA scoring is judged against.
    pub fn sla(&self) -> Sla {
        self.sla
    }

    /// Simulates the trace on `point` — through [`Fleet`], so the
    /// point's fleet axis (replicas, router, disaggregation) is honored
    /// — and scores the outcome. `area_cm2` is the design's **total**
    /// silicon ([`Evaluation::area_cm2`] for swept points).
    pub fn score_point(
        &self,
        point: &DesignPoint,
        area_cm2: f64,
        params: &ModelParams,
    ) -> ServeScore {
        if self.scenarios.is_empty() {
            let report = Fleet::for_point(point, params).run(&self.trace);
            return ServeScore {
                meets_sla: self.sla.met_by(&report),
                goodput_per_cm2: if area_cm2 > 0.0 { report.goodput_rps / area_cm2 } else { 0.0 },
                report,
            };
        }
        // Availability-aware: replay every scenario, fold per `ranking`.
        // Two guards keep the merit honest under failure:
        //
        // * goodput normalizes by the design's WORST makespan across all
        //   scenarios (floored at the trace horizon) — a design that
        //   fail-stops early completes less work but cannot stop the
        //   clock, so shedding the queue only lowers its merit;
        // * a shed request never sees a first token, so it counts as an
        //   infinite TTFT sample against the p99 bound: shedding more
        //   than 1% of the offered requests makes the p99 infinite and
        //   the scenario SLA-infeasible (no survivorship bias).
        let detailed: Vec<crate::fleet::FleetReport> = self
            .scenarios
            .iter()
            .map(|spec| {
                Fleet::for_point(point, params).with_faults(spec.clone()).run_detailed(&self.trace)
            })
            .collect();
        let denom = detailed
            .iter()
            .map(|d| d.merged.makespan_s)
            .fold(self.trace.last_arrival_s(), f64::max)
            .max(1e-12);
        let all_meet = detailed.iter().all(|d| {
            let offered = d.merged.completed + d.faults.shed;
            self.sla.met_by(&d.merged) && d.faults.shed * 100 <= offered
        });
        let mut worst: Option<(f64, ServeReport)> = None;
        let mut sum = 0.0;
        for d in detailed {
            let report = d.merged;
            let merit =
                if area_cm2 > 0.0 { report.completed as f64 / denom / area_cm2 } else { 0.0 };
            sum += merit;
            if worst.as_ref().is_none_or(|(m, _)| merit < *m) {
                worst = Some((merit, report));
            }
        }
        let (worst_merit, worst_report) = worst.expect("scenario list checked non-empty");
        ServeScore {
            meets_sla: all_meet,
            goodput_per_cm2: match self.ranking {
                ScenarioRanking::WorstCase => worst_merit,
                ScenarioRanking::Expected => sum / self.scenarios.len() as f64,
            },
            // The report behind the score is the worst scenario's — the
            // one the WorstCase ranking is judged by, and the honest
            // "what does failure look like" answer under Expected too.
            report: worst_report,
        }
    }

    /// The full serving score behind [`Objective::score`] for one
    /// evaluation, memoized per design point (using the objective's own
    /// [`ServeObjective::with_params`] parameters).
    pub fn score_detailed(&self, evaluation: &Evaluation) -> ServeScore {
        let key = PointKey::of(&evaluation.point);
        if let Some(hit) = self.memo.lock().expect("serve objective memo poisoned").get(&key) {
            return hit.clone();
        }
        let score = self.score_point(&evaluation.point, evaluation.area_cm2, &self.params);
        self.memo.lock().expect("serve objective memo poisoned").entry(key).or_insert(score).clone()
    }

    /// Scores `evaluations` and returns them **best first** by
    /// served-traffic merit: SLA-meeting designs ahead of SLA-missing
    /// ones; within the feasible set, highest goodput per total area
    /// first; within the infeasible set, lowest p99 TTFT first. Ties
    /// break by smaller area, then arrival order — fully deterministic.
    ///
    /// Ranking compares serving behavior, which is only meaningful for
    /// designs serving the *same* workload — pass one
    /// `(workload, seq_len)` group at a time (e.g. one
    /// [`fusemax_dse::FrontierGroup`]'s points), exactly as with the
    /// sweeper's latency objectives.
    pub fn rank(
        &self,
        evaluations: &[Arc<Evaluation>],
        params: &ModelParams,
    ) -> Vec<(Arc<Evaluation>, ServeScore)> {
        // Each design's replay is independent (its own ServiceTimeTable,
        // its own report), so the frontier fans out across cores; the
        // order-preserving collect keeps scoring deterministic.
        let score = |e: &Arc<Evaluation>| self.score_point(&e.point, e.area_cm2, params);
        let mut scored: Vec<(Arc<Evaluation>, ServeScore)> =
            if self.parallel && evaluations.len() > 1 {
                evaluations.par_iter().map(|e| (Arc::clone(e), score(e))).collect()
            } else {
                evaluations.iter().map(|e| (Arc::clone(e), score(e))).collect()
            };
        scored.sort_by(|(ea, sa), (eb, sb)| {
            sb.meets_sla
                .cmp(&sa.meets_sla)
                .then_with(|| {
                    if sa.meets_sla && sb.meets_sla {
                        sb.goodput_per_cm2.total_cmp(&sa.goodput_per_cm2)
                    } else {
                        sa.report.ttft.p99.total_cmp(&sb.report.ttft.p99)
                    }
                })
                .then_with(|| ea.area_cm2.total_cmp(&eb.area_cm2))
        });
        scored
    }

    /// The best design under this objective, if any were given.
    #[deprecated(note = "use `rank(..).into_iter().next()`, or search with \
                         `Sweeper::with_objective` to optimize in the loop")]
    pub fn best(
        &self,
        evaluations: &[Arc<Evaluation>],
        params: &ModelParams,
    ) -> Option<(Arc<Evaluation>, ServeScore)> {
        self.rank(evaluations, params).into_iter().next()
    }
}

impl Objective for ServeObjective {
    fn name(&self) -> &str {
        &self.name
    }

    /// SLA-feasible designs carry their goodput per total cm² as merit
    /// (folded across fault scenarios per [`ScenarioRanking`] when the
    /// objective is availability-aware); infeasible ones carry
    /// `-p99 TTFT`, so "less infeasible" still compares greater and the
    /// search can climb toward feasibility.
    fn score(&self, evaluation: &Evaluation) -> MeritScore {
        let score = self.score_detailed(evaluation);
        MeritScore {
            feasible: score.meets_sla,
            merit: if score.meets_sla { score.goodput_per_cm2 } else { -score.report.ttft.p99 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{Arrivals, LengthMix, TrafficSpec};
    use fusemax_dse::{DesignSpace, FleetSpec, Sweeper};
    use fusemax_workloads::TransformerConfig;

    fn trace(rate: f64, requests: usize) -> Trace {
        TrafficSpec {
            arrivals: Arrivals::Poisson { rate_per_s: rate },
            prompt_mix: LengthMix::new([(256, 3.0), (2048, 1.0)]),
            output_mix: LengthMix::uniform([8, 32]),
            requests,
        }
        .generate(17)
    }

    #[test]
    fn sla_partition_orders_the_ranking() {
        let space = DesignSpace::new()
            .with_array_dims([32, 128, 512])
            .with_workloads([TransformerConfig::bert()]);
        let params = ModelParams::default();
        let outcome = Sweeper::new(params.clone()).sweep(&space);
        let objective = ServeObjective::new(trace(30.0, 25), Sla::p99_ttft(0.25));
        let ranked = objective.rank(&outcome.evaluations, &params);
        assert_eq!(ranked.len(), 3);
        // Once an SLA-missing design appears, no feasible design follows.
        let mut seen_infeasible = false;
        for (_, score) in &ranked {
            if !score.meets_sla {
                seen_infeasible = true;
            } else {
                assert!(!seen_infeasible, "feasible design ranked below an infeasible one");
            }
        }
    }

    #[test]
    fn ranking_is_deterministic() {
        let space =
            DesignSpace::new().with_array_dims([64, 256]).with_workloads([TransformerConfig::t5()]);
        let params = ModelParams::default();
        let outcome = Sweeper::new(params.clone()).sweep(&space);
        let objective = ServeObjective::new(trace(50.0, 20), Sla::p99_ttft(0.5));
        let a = objective.rank(&outcome.evaluations, &params);
        let b = objective.rank(&outcome.evaluations, &params);
        for ((ea, sa), (eb, sb)) in a.iter().zip(&b) {
            assert_eq!(ea.point, eb.point);
            assert_eq!(sa, sb);
        }
    }

    #[test]
    fn an_impossible_sla_ranks_by_tail_latency() {
        let space = DesignSpace::new()
            .with_array_dims([64, 256])
            .with_workloads([TransformerConfig::bert()]);
        let params = ModelParams::default();
        let outcome = Sweeper::new(params.clone()).sweep(&space);
        let objective = ServeObjective::new(trace(50.0, 20), Sla::p99_ttft(1e-12));
        let ranked = objective.rank(&outcome.evaluations, &params);
        assert!(ranked.iter().all(|(_, s)| !s.meets_sla));
        for w in ranked.windows(2) {
            assert!(w[0].1.report.ttft.p99 <= w[1].1.report.ttft.p99);
        }
    }

    #[test]
    fn the_objective_trait_mirrors_the_detailed_score() {
        let space = DesignSpace::new()
            .with_array_dims([64, 256])
            .with_workloads([TransformerConfig::bert()]);
        let params = ModelParams::default();
        let outcome = Sweeper::new(params.clone()).sweep(&space);
        let objective =
            ServeObjective::new(trace(30.0, 20), Sla::p99_ttft(0.25)).with_params(params);
        for evaluation in &outcome.evaluations {
            let detail = objective.score_detailed(evaluation);
            let merit = Objective::score(&objective, evaluation);
            assert_eq!(merit.feasible, detail.meets_sla);
            if detail.meets_sla {
                assert_eq!(merit.merit, detail.goodput_per_cm2);
            } else {
                assert_eq!(merit.merit, -detail.report.ttft.p99);
            }
        }
    }

    #[test]
    fn in_loop_scores_are_memoized_per_point() {
        let space =
            DesignSpace::new().with_array_dims([128]).with_workloads([TransformerConfig::bert()]);
        let params = ModelParams::default();
        let outcome = Sweeper::new(params.clone()).sweep(&space);
        let objective =
            ServeObjective::new(trace(30.0, 15), Sla::p99_ttft(0.25)).with_params(params);
        let evaluation = &outcome.evaluations[0];
        let first = Objective::score(&objective, evaluation);
        let again = Objective::score(&objective, evaluation);
        assert_eq!(first, again);
        assert_eq!(objective.memo.lock().unwrap().len(), 1, "second score must hit the memo");
    }

    #[test]
    fn empty_scenarios_restore_the_fault_free_objective_exactly() {
        let space =
            DesignSpace::new().with_array_dims([128]).with_workloads([TransformerConfig::bert()]);
        let params = ModelParams::default();
        let outcome = Sweeper::new(params.clone()).sweep(&space);
        let legacy =
            ServeObjective::new(trace(30.0, 15), Sla::p99_ttft(0.25)).with_params(params.clone());
        let explicit = ServeObjective::new(trace(30.0, 15), Sla::p99_ttft(0.25))
            .with_params(params)
            .with_fault_scenarios([], ScenarioRanking::WorstCase);
        assert_eq!(Objective::name(&explicit), "sla-goodput-per-cm2");
        let a = legacy.score_detailed(&outcome.evaluations[0]);
        let b = explicit.score_detailed(&outcome.evaluations[0]);
        assert_eq!(a, b);
    }

    #[test]
    fn scenario_scoring_is_deterministic_and_named_by_ranking() {
        let space =
            DesignSpace::new().with_array_dims([128]).with_workloads([TransformerConfig::bert()]);
        let params = ModelParams::default();
        let outcome = Sweeper::new(params.clone()).sweep(&space);
        let t = trace(200.0, 25);
        let kill = FaultSpec::single_failure(0.5 * t.last_arrival_s(), 1);
        let scenarios = vec![FaultSpec::none(), kill];

        let worst = ServeObjective::new(t.clone(), Sla::p99_ttft(0.25))
            .with_params(params.clone())
            .with_fault_scenarios(scenarios.clone(), ScenarioRanking::WorstCase);
        assert_eq!(Objective::name(&worst), "worst-case-sla-goodput-per-cm2");
        let expected = ServeObjective::new(t, Sla::p99_ttft(0.25))
            .with_params(params)
            .with_fault_scenarios(scenarios, ScenarioRanking::Expected);
        assert_eq!(Objective::name(&expected), "expected-sla-goodput-per-cm2");

        let mut fleet_eval = (*outcome.evaluations[0]).clone();
        fleet_eval.point.fleet = FleetSpec::replicated(2);
        fleet_eval.area_cm2 = outcome.evaluations[0].area_cm2 * 2.0;

        let defaults = ModelParams::default();
        let w1 = worst.score_point(&fleet_eval.point, fleet_eval.area_cm2, &defaults);
        let w2 = worst.score_point(&fleet_eval.point, fleet_eval.area_cm2, &defaults);
        assert_eq!(w1, w2, "scenario replays must be bit-identical");
        let e1 = expected.score_point(&fleet_eval.point, fleet_eval.area_cm2, &defaults);
        // The mean over scenarios can never fall below the minimum.
        assert!(e1.goodput_per_cm2 >= w1.goodput_per_cm2);
    }

    #[test]
    fn a_failure_scenario_lowers_worst_case_merit() {
        let space =
            DesignSpace::new().with_array_dims([128]).with_workloads([TransformerConfig::bert()]);
        let params = ModelParams::default();
        let outcome = Sweeper::new(params.clone()).sweep(&space);
        let t = trace(200.0, 25);
        let kill = FaultSpec::single_failure(0.5 * t.last_arrival_s(), 0);

        let mut fleet_eval = (*outcome.evaluations[0]).clone();
        fleet_eval.point.fleet = FleetSpec::replicated(2);
        fleet_eval.area_cm2 = outcome.evaluations[0].area_cm2 * 2.0;

        let clean = ServeObjective::new(t.clone(), Sla::p99_ttft(10.0))
            .with_params(params.clone())
            .with_fault_scenarios([FaultSpec::none()], ScenarioRanking::WorstCase);
        let faulty = ServeObjective::new(t, Sla::p99_ttft(10.0))
            .with_params(params)
            .with_fault_scenarios([FaultSpec::none(), kill], ScenarioRanking::WorstCase);
        let defaults = ModelParams::default();
        let c = clean.score_point(&fleet_eval.point, fleet_eval.area_cm2, &defaults);
        let f = faulty.score_point(&fleet_eval.point, fleet_eval.area_cm2, &defaults);
        assert!(
            f.goodput_per_cm2 <= c.goodput_per_cm2,
            "a single-failure scenario cannot raise worst-case merit \
             (clean {} vs faulty {})",
            c.goodput_per_cm2,
            f.goodput_per_cm2
        );
    }

    #[test]
    fn fleet_points_score_through_the_fleet_path() {
        let space =
            DesignSpace::new().with_array_dims([128]).with_workloads([TransformerConfig::bert()]);
        let params = ModelParams::default();
        let outcome = Sweeper::new(params.clone()).sweep(&space);
        let single = &outcome.evaluations[0];
        let mut fleet_eval = (**single).clone();
        fleet_eval.point.fleet = FleetSpec::replicated(4);
        fleet_eval.area_cm2 = single.area_cm2 * 4.0;

        let heavy = trace(600.0, 40);
        let objective = ServeObjective::new(heavy, Sla::p99_ttft(0.25)).with_params(params);
        let fleet_score = objective.score_detailed(&fleet_eval);
        let single_score = objective.score_detailed(single);
        // Four chips drain the same queue faster than one.
        assert!(fleet_score.report.ttft.p99 <= single_score.report.ttft.p99);
        assert!(fleet_score.report.makespan_s <= single_score.report.makespan_s);
    }
}
