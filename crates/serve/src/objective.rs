//! The DSE bridge: score and re-rank design-space frontier members by
//! served-traffic merit under an SLA, instead of by single-point latency.
//!
//! Fixed-sequence-length latency ranking always crowns the biggest chip.
//! Under real traffic the question changes: once a design keeps up with
//! the offered load inside the SLA, extra silicon buys nothing — so the
//! serving-aware merit is **SLA-feasible goodput per unit area**, and the
//! winner is typically a smaller chip than the latency winner. Designs
//! that miss the SLA rank below every design that meets it, ordered by
//! how badly they miss (p99 TTFT).

use crate::report::ServeReport;
use crate::sim::ServeSim;
use crate::traffic::Trace;
use fusemax_dse::{DesignPoint, Evaluation};
use fusemax_model::ModelParams;
use rayon::prelude::*;
use std::sync::Arc;

/// A serving-latency service-level agreement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sla {
    /// Ceiling on 99th-percentile time to first token, in seconds.
    pub p99_ttft_s: f64,
}

impl Sla {
    /// An SLA bounding p99 TTFT.
    pub fn p99_ttft(seconds: f64) -> Self {
        Sla { p99_ttft_s: seconds }
    }

    /// `true` when `report` satisfies every bound.
    pub fn met_by(&self, report: &ServeReport) -> bool {
        report.ttft.p99 <= self.p99_ttft_s
    }
}

/// One design's serving score under a [`ServeObjective`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServeScore {
    /// Whether the SLA held over the whole trace.
    pub meets_sla: bool,
    /// Completed requests per second per cm² of chip — the serving-cost
    /// merit used to rank SLA-feasible designs.
    pub goodput_per_cm2: f64,
    /// The full simulation report behind the score.
    pub report: ServeReport,
}

/// Scores design points by simulating a traffic trace against them.
///
/// # Example
///
/// ```
/// use fusemax_model::ModelParams;
/// use fusemax_serve::{Arrivals, LengthMix, ServeObjective, Sla, TrafficSpec};
///
/// let trace = TrafficSpec {
///     arrivals: Arrivals::Poisson { rate_per_s: 20.0 },
///     prompt_mix: LengthMix::fixed(512),
///     output_mix: LengthMix::fixed(8),
///     requests: 30,
/// }
/// .generate(5);
/// let objective = ServeObjective::new(trace, Sla::p99_ttft(0.5));
///
/// let space = fusemax_dse::DesignSpace::new()
///     .with_workloads([fusemax_workloads::TransformerConfig::bert()]);
/// let outcome = fusemax_dse::Sweeper::new(ModelParams::default()).sweep(&space);
/// let ranked = objective.rank(&outcome.evaluations, &ModelParams::default());
/// assert_eq!(ranked.len(), outcome.evaluations.len());
/// ```
#[derive(Debug, Clone)]
pub struct ServeObjective {
    trace: Trace,
    sla: Sla,
    parallel: bool,
}

impl ServeObjective {
    /// An objective serving `trace` under `sla`. Ranking simulates the
    /// frontier designs on all cores by default
    /// ([`ServeObjective::with_parallelism`]).
    pub fn new(trace: Trace, sla: Sla) -> Self {
        ServeObjective { trace, sla, parallel: true }
    }

    /// Switches between parallel (`true`, the default) and serial
    /// per-design simulation in [`ServeObjective::rank`]. Results are
    /// bit-identical either way — each design's replay is an independent
    /// pure function, and the collected order is the input order — so the
    /// switch only trades wall-clock time (it exists so the parity bench
    /// can time both paths).
    pub fn with_parallelism(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// The trace driving the simulations.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The SLA scoring is judged against.
    pub fn sla(&self) -> Sla {
        self.sla
    }

    /// Simulates the trace on `point` and scores the outcome.
    /// `area_cm2` is the design's chip area (available as
    /// [`Evaluation::area_cm2`] for swept points).
    pub fn score_point(
        &self,
        point: &DesignPoint,
        area_cm2: f64,
        params: &ModelParams,
    ) -> ServeScore {
        let report = ServeSim::for_point(point, params).run(&self.trace);
        ServeScore {
            meets_sla: self.sla.met_by(&report),
            goodput_per_cm2: if area_cm2 > 0.0 { report.goodput_rps / area_cm2 } else { 0.0 },
            report,
        }
    }

    /// Scores one swept evaluation.
    pub fn score(&self, evaluation: &Evaluation, params: &ModelParams) -> ServeScore {
        self.score_point(&evaluation.point, evaluation.area_cm2, params)
    }

    /// Scores `evaluations` and returns them **best first** by
    /// served-traffic merit: SLA-meeting designs ahead of SLA-missing
    /// ones; within the feasible set, highest goodput per area first;
    /// within the infeasible set, lowest p99 TTFT first. Ties break by
    /// smaller area, then arrival order — fully deterministic.
    ///
    /// Ranking compares serving behavior, which is only meaningful for
    /// designs serving the *same* workload — pass one
    /// `(workload, seq_len)` group at a time (e.g. one
    /// [`fusemax_dse::FrontierGroup`]'s points), exactly as with the
    /// sweeper's latency objectives.
    pub fn rank(
        &self,
        evaluations: &[Arc<Evaluation>],
        params: &ModelParams,
    ) -> Vec<(Arc<Evaluation>, ServeScore)> {
        // Each design's replay is independent (its own ServiceTimeTable,
        // its own report), so the frontier fans out across cores; the
        // order-preserving collect keeps scoring deterministic.
        let mut scored: Vec<(Arc<Evaluation>, ServeScore)> =
            if self.parallel && evaluations.len() > 1 {
                evaluations.par_iter().map(|e| (Arc::clone(e), self.score(e, params))).collect()
            } else {
                evaluations.iter().map(|e| (Arc::clone(e), self.score(e, params))).collect()
            };
        scored.sort_by(|(ea, sa), (eb, sb)| {
            sb.meets_sla
                .cmp(&sa.meets_sla)
                .then_with(|| {
                    if sa.meets_sla && sb.meets_sla {
                        sb.goodput_per_cm2.total_cmp(&sa.goodput_per_cm2)
                    } else {
                        sa.report.ttft.p99.total_cmp(&sb.report.ttft.p99)
                    }
                })
                .then_with(|| ea.area_cm2.total_cmp(&eb.area_cm2))
        });
        scored
    }

    /// The best design under this objective, if any were given.
    pub fn best(
        &self,
        evaluations: &[Arc<Evaluation>],
        params: &ModelParams,
    ) -> Option<(Arc<Evaluation>, ServeScore)> {
        self.rank(evaluations, params).into_iter().next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{Arrivals, LengthMix, TrafficSpec};
    use fusemax_dse::{DesignSpace, Sweeper};
    use fusemax_workloads::TransformerConfig;

    fn trace(rate: f64, requests: usize) -> Trace {
        TrafficSpec {
            arrivals: Arrivals::Poisson { rate_per_s: rate },
            prompt_mix: LengthMix::new([(256, 3.0), (2048, 1.0)]),
            output_mix: LengthMix::uniform([8, 32]),
            requests,
        }
        .generate(17)
    }

    #[test]
    fn sla_partition_orders_the_ranking() {
        let space = DesignSpace::new()
            .with_array_dims([32, 128, 512])
            .with_workloads([TransformerConfig::bert()]);
        let params = ModelParams::default();
        let outcome = Sweeper::new(params.clone()).sweep(&space);
        let objective = ServeObjective::new(trace(30.0, 25), Sla::p99_ttft(0.25));
        let ranked = objective.rank(&outcome.evaluations, &params);
        assert_eq!(ranked.len(), 3);
        // Once an SLA-missing design appears, no feasible design follows.
        let mut seen_infeasible = false;
        for (_, score) in &ranked {
            if !score.meets_sla {
                seen_infeasible = true;
            } else {
                assert!(!seen_infeasible, "feasible design ranked below an infeasible one");
            }
        }
    }

    #[test]
    fn ranking_is_deterministic() {
        let space =
            DesignSpace::new().with_array_dims([64, 256]).with_workloads([TransformerConfig::t5()]);
        let params = ModelParams::default();
        let outcome = Sweeper::new(params.clone()).sweep(&space);
        let objective = ServeObjective::new(trace(50.0, 20), Sla::p99_ttft(0.5));
        let a = objective.rank(&outcome.evaluations, &params);
        let b = objective.rank(&outcome.evaluations, &params);
        for ((ea, sa), (eb, sb)) in a.iter().zip(&b) {
            assert_eq!(ea.point, eb.point);
            assert_eq!(sa, sb);
        }
    }

    #[test]
    fn an_impossible_sla_ranks_by_tail_latency() {
        let space = DesignSpace::new()
            .with_array_dims([64, 256])
            .with_workloads([TransformerConfig::bert()]);
        let params = ModelParams::default();
        let outcome = Sweeper::new(params.clone()).sweep(&space);
        let objective = ServeObjective::new(trace(50.0, 20), Sla::p99_ttft(1e-12));
        let ranked = objective.rank(&outcome.evaluations, &params);
        assert!(ranked.iter().all(|(_, s)| !s.meets_sla));
        for w in ranked.windows(2) {
            assert!(w[0].1.report.ttft.p99 <= w[1].1.report.ttft.p99);
        }
    }
}
