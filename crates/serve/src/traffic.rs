//! Seeded traffic generation: request arrival processes and length mixes
//! that compile into replayable [`Trace`]s.
//!
//! A trace is plain data — request ids, arrival times, prompt and output
//! token counts — so the same trace can drive any number of design
//! points, and two generations from the same [`TrafficSpec`] and seed are
//! bit-identical.

use rand::distributions::{Distribution, Exp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One serving request: a prompt to prefill and a number of output tokens
/// to decode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Position in the trace (0-based; doubles as a stable identity).
    pub id: usize,
    /// Arrival time in seconds from the start of the trace.
    pub arrival_s: f64,
    /// Prompt length in tokens (the prefill phase's sequence length).
    pub prompt_tokens: usize,
    /// Output tokens to generate (≥ 1; the first is produced by prefill).
    pub output_tokens: usize,
}

/// A replayable request stream, sorted by arrival time.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    /// The requests, in arrival order.
    pub requests: Vec<Request>,
}

impl Trace {
    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// `true` when the trace holds no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Arrival time of the last request (0 for an empty trace).
    pub fn last_arrival_s(&self) -> f64 {
        self.requests.last().map_or(0.0, |r| r.arrival_s)
    }

    /// Total output tokens across all requests.
    pub fn total_output_tokens(&self) -> usize {
        self.requests.iter().map(|r| r.output_tokens).sum()
    }

    /// Total prompt tokens across all requests.
    pub fn total_prompt_tokens(&self) -> usize {
        self.requests.iter().map(|r| r.prompt_tokens).sum()
    }

    /// Mean offered load in requests per second (0 for traces shorter
    /// than two requests).
    pub fn offered_rate_rps(&self) -> f64 {
        if self.requests.len() < 2 || self.last_arrival_s() == 0.0 {
            0.0
        } else {
            self.requests.len() as f64 / self.last_arrival_s()
        }
    }
}

/// The arrival process of a [`TrafficSpec`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrivals {
    /// Poisson arrivals: independent exponential inter-arrival gaps with
    /// mean `1 / rate_per_s`.
    Poisson {
        /// Mean arrival rate in requests per second.
        rate_per_s: f64,
    },
    /// Bursty arrivals: requests land in simultaneous groups of `burst`,
    /// with exponential gaps between groups sized so the *mean* rate
    /// still equals `rate_per_s` — the heavy-tail pattern that stresses
    /// tail latency far beyond a smooth Poisson stream.
    Bursty {
        /// Mean arrival rate in requests per second.
        rate_per_s: f64,
        /// Requests per burst (≥ 1).
        burst: usize,
    },
}

/// A discrete mix over token lengths: each `(tokens, weight)` choice is
/// drawn with probability proportional to its weight.
#[derive(Debug, Clone, PartialEq)]
pub struct LengthMix {
    choices: Vec<(usize, f64)>,
}

impl LengthMix {
    /// A mix over explicit `(tokens, weight)` choices.
    ///
    /// # Panics
    ///
    /// Panics if no choice is given, or any weight is non-positive or
    /// non-finite.
    pub fn new(choices: impl IntoIterator<Item = (usize, f64)>) -> Self {
        let choices: Vec<(usize, f64)> = choices.into_iter().collect();
        assert!(!choices.is_empty(), "a length mix needs at least one choice");
        for &(tokens, w) in &choices {
            assert!(w > 0.0 && w.is_finite(), "weight {w} for {tokens} tokens must be positive");
        }
        LengthMix { choices }
    }

    /// Every length equally likely.
    pub fn uniform(lengths: impl IntoIterator<Item = usize>) -> Self {
        Self::new(lengths.into_iter().map(|l| (l, 1.0)))
    }

    /// A single fixed length.
    pub fn fixed(tokens: usize) -> Self {
        Self::new([(tokens, 1.0)])
    }

    /// The `(tokens, weight)` choices.
    pub fn choices(&self) -> &[(usize, f64)] {
        &self.choices
    }

    /// Weighted mean length.
    pub fn mean(&self) -> f64 {
        let total: f64 = self.choices.iter().map(|&(_, w)| w).sum();
        self.choices.iter().map(|&(l, w)| l as f64 * w).sum::<f64>() / total
    }

    /// Draws one length.
    fn sample(&self, rng: &mut StdRng) -> usize {
        let total: f64 = self.choices.iter().map(|&(_, w)| w).sum();
        let mut x = rng.gen_range(0.0..total);
        for &(tokens, w) in &self.choices {
            if x < w {
                return tokens;
            }
            x -= w;
        }
        // Rounding can leave x == 0 after the last subtraction.
        self.choices.last().expect("non-empty").0
    }
}

/// A declarative traffic model: how requests arrive and how long their
/// prompts and outputs are.
///
/// # Example
///
/// ```
/// use fusemax_serve::{Arrivals, LengthMix, TrafficSpec};
///
/// let spec = TrafficSpec {
///     arrivals: Arrivals::Poisson { rate_per_s: 8.0 },
///     prompt_mix: LengthMix::new([(512, 3.0), (4096, 1.0)]),
///     output_mix: LengthMix::uniform([16, 64, 256]),
///     requests: 100,
/// };
/// let trace = spec.generate(7);
/// assert_eq!(trace.len(), 100);
/// assert_eq!(trace, spec.generate(7), "same seed, same trace");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficSpec {
    /// The arrival process.
    pub arrivals: Arrivals,
    /// Prompt-length mix (prefill cost driver).
    pub prompt_mix: LengthMix,
    /// Output-length mix (decode cost driver; lengths are clamped to ≥ 1).
    pub output_mix: LengthMix,
    /// How many requests the trace holds.
    pub requests: usize,
}

impl TrafficSpec {
    /// Compiles the spec into a replayable [`Trace`], fully determined by
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the arrival rate is non-positive or a bursty process has
    /// `burst = 0`.
    pub fn generate(&self, seed: u64) -> Trace {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut requests = Vec::with_capacity(self.requests);
        let mut clock = 0.0f64;
        let gap_dist = match self.arrivals {
            Arrivals::Poisson { rate_per_s } => {
                Exp::new(rate_per_s).expect("arrival rate must be positive")
            }
            Arrivals::Bursty { rate_per_s, burst } => {
                assert!(burst > 0, "bursts must hold at least one request");
                // Gaps separate bursts, so the per-gap rate is scaled down
                // by the burst size to keep the mean request rate.
                Exp::new(rate_per_s / burst as f64).expect("arrival rate must be positive")
            }
        };
        for id in 0..self.requests {
            let new_burst = match self.arrivals {
                Arrivals::Poisson { .. } => true,
                Arrivals::Bursty { burst, .. } => id % burst == 0,
            };
            if new_burst {
                clock += gap_dist.sample(&mut rng);
            }
            let prompt_tokens = self.prompt_mix.sample(&mut rng).max(1);
            let output_tokens = self.output_mix.sample(&mut rng).max(1);
            requests.push(Request { id, arrival_s: clock, prompt_tokens, output_tokens });
        }
        Trace { requests }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(arrivals: Arrivals) -> TrafficSpec {
        TrafficSpec {
            arrivals,
            prompt_mix: LengthMix::new([(256, 1.0), (2048, 1.0)]),
            output_mix: LengthMix::uniform([8, 64]),
            requests: 500,
        }
    }

    #[test]
    fn traces_are_deterministic_per_seed() {
        let s = spec(Arrivals::Poisson { rate_per_s: 10.0 });
        assert_eq!(s.generate(42), s.generate(42));
        assert_ne!(s.generate(42), s.generate(43));
    }

    #[test]
    fn arrivals_are_sorted_and_rates_are_respected() {
        let s = spec(Arrivals::Poisson { rate_per_s: 10.0 });
        let trace = s.generate(1);
        for w in trace.requests.windows(2) {
            assert!(w[1].arrival_s >= w[0].arrival_s);
        }
        let rate = trace.offered_rate_rps();
        assert!((7.0..13.0).contains(&rate), "offered rate {rate} far from 10");
    }

    #[test]
    fn bursts_arrive_simultaneously_at_the_same_mean_rate() {
        let s = spec(Arrivals::Bursty { rate_per_s: 10.0, burst: 5 });
        let trace = s.generate(9);
        // Within a burst, arrival times are identical.
        for chunk in trace.requests.chunks(5) {
            for r in chunk {
                assert_eq!(r.arrival_s, chunk[0].arrival_s);
            }
        }
        let rate = trace.offered_rate_rps();
        assert!((6.0..15.0).contains(&rate), "offered rate {rate} far from 10");
    }

    #[test]
    fn lengths_come_from_the_mix() {
        let s = spec(Arrivals::Poisson { rate_per_s: 5.0 });
        let trace = s.generate(3);
        for r in &trace.requests {
            assert!(r.prompt_tokens == 256 || r.prompt_tokens == 2048);
            assert!(r.output_tokens == 8 || r.output_tokens == 64);
        }
        // Both prompt choices actually occur at equal weights.
        let short = trace.requests.iter().filter(|r| r.prompt_tokens == 256).count();
        assert!((100..400).contains(&short), "short prompts {short}/500");
    }

    #[test]
    fn mix_mean_is_weighted() {
        let mix = LengthMix::new([(100, 3.0), (500, 1.0)]);
        assert_eq!(mix.mean(), 200.0);
        assert_eq!(LengthMix::fixed(64).mean(), 64.0);
    }

    #[test]
    fn trace_totals() {
        let trace = Trace {
            requests: vec![
                Request { id: 0, arrival_s: 0.0, prompt_tokens: 10, output_tokens: 4 },
                Request { id: 1, arrival_s: 2.0, prompt_tokens: 30, output_tokens: 6 },
            ],
        };
        assert_eq!(trace.total_prompt_tokens(), 40);
        assert_eq!(trace.total_output_tokens(), 10);
        assert_eq!(trace.last_arrival_s(), 2.0);
        assert_eq!(trace.offered_rate_rps(), 1.0);
        assert!(Trace::default().is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one choice")]
    fn empty_mixes_are_rejected() {
        let _ = LengthMix::new([]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_weights_are_rejected() {
        let _ = LengthMix::new([(64, 0.0)]);
    }
}
