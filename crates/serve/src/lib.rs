#![warn(missing_docs)]

//! Traffic-driven serving simulation over the FuseMax analytical model:
//! drive any design point with a seeded, replayable request trace and
//! measure what the paper's fixed-sequence-length figures cannot — how
//! the design behaves under a realistic mix of prefill and decode work.
//!
//! The paper (and [`fusemax_dse`]'s objectives) evaluate each design at
//! one sequence length. Real attention serving is a *mixture*: prompts of
//! many lengths arriving stochastically, each followed by a decode phase
//! whose per-token cost is orders of magnitude below the prefill's. A
//! design that wins at one fixed length can lose badly under such a mix —
//! and the only way to see it is to simulate the queueing.
//!
//! # The pieces
//!
//! * [`TrafficSpec`] / [`Trace`] — seeded request generation: Poisson or
//!   bursty [`Arrivals`], configurable prompt/output [`LengthMix`]es.
//!   Traces are plain data; the same trace replays against any design.
//! * [`ServeSim`] — a deterministic continuous-batching engine. Phase
//!   service times come from the analytical model
//!   ([`fusemax_model::e2e_report_on`], amortized per token for decode);
//!   admission is byte-granular against the design's global buffer —
//!   each request reserves its per-layer K/V footprint
//!   ([`fusemax_arch::ArchConfig::max_resident_requests`] is the
//!   uniform-request-size shorthand for the same bound).
//! * [`SchedulerPolicy`] (re-exported from [`fusemax_dse`], where it is a
//!   searchable design-space axis) — chunked prefill with a per-iteration
//!   token budget, a TGI-style waiting/served admission ratio, and FCFS
//!   vs shortest-prompt-first [`QueueOrder`]. The default
//!   [`SchedulerPolicy::unbounded`] reproduces the whole-prompt engine
//!   byte-for-byte.
//! * [`ServiceTimeTable`] — every model call a trace replay needs,
//!   precomputed ([`ServeSim::service_times`]) so the iteration loop is
//!   pure lookups and repeated replays ([`ServeSim::run_with`]) pay the
//!   model exactly once per design.
//! * [`ServeReport`] — goodput, token throughput, utilization, and exact
//!   nearest-rank p50/p95/p99 latency quantiles ([`LatencyStats`]) for
//!   TTFT, per-output-token latency, and end-to-end time.
//! * [`Fleet`] — fleet-scale serving: a deterministic router
//!   ([`RouterPolicy`]) shards one trace across N replica chips
//!   ([`FleetSpec::replicated`]) or across dedicated prefill chips
//!   feeding decode chips with the K/V handoff charged at DRAM
//!   bandwidth ([`FleetSpec::disaggregated`]); per-replica reports merge
//!   into a fleet-level [`ServeReport`] with exact quantiles over the
//!   union of raw samples ([`FleetReport`]).
//! * [`ServeObjective`] — the DSE bridge. As a
//!   [`fusemax_dse::Objective`] handed to
//!   [`fusemax_dse::Sweeper::with_objective`], every search strategy
//!   optimizes SLA-feasible goodput per total cm² *in the loop*, with
//!   the fleet shape searchable like any other axis; post hoc,
//!   [`ServeObjective::rank`] re-ranks swept
//!   [`fusemax_dse::Evaluation`]s by the same merit ([`Sla`],
//!   [`ServeScore`]).
//!
//! # Example
//!
//! ```
//! use fusemax_model::ModelParams;
//! use fusemax_serve::{Arrivals, LengthMix, ServeObjective, Sla, TrafficSpec};
//! use fusemax_workloads::TransformerConfig;
//!
//! // A light interactive mix: short prompts, short answers.
//! let trace = TrafficSpec {
//!     arrivals: Arrivals::Poisson { rate_per_s: 25.0 },
//!     prompt_mix: LengthMix::new([(256, 3.0), (1024, 1.0)]),
//!     output_mix: LengthMix::uniform([8, 32]),
//!     requests: 40,
//! }
//! .generate(7);
//!
//! // Sweep the Fig 12 chip family for BERT, then pick the best *server*.
//! let params = ModelParams::default();
//! let space = fusemax_dse::DesignSpace::new()
//!     .with_workloads([TransformerConfig::bert()]);
//! let outcome = fusemax_dse::Sweeper::new(params.clone()).sweep(&space);
//!
//! let objective = ServeObjective::new(trace, Sla::p99_ttft(0.25));
//! let (best, score) = objective.rank(&outcome.evaluations, &params).remove(0);
//! assert!(score.report.completed == 40);
//! // The serving winner is typically NOT the biggest (latency-best) chip.
//! assert!(best.point.array_dim <= 512);
//! ```

mod attribution;
mod fault;
mod fleet;
mod objective;
mod report;
mod sim;
mod table;
mod traffic;

pub use attribution::{LatencyAttribution, SlaForensics, SlaViolation, LATENCY_BUCKETS};
pub use fault::{FaultEvent, FaultKind, FaultSpec, FaultSpecError, RetryPolicy};
pub use fleet::{Fleet, FleetReport, ReplicaImbalance};
pub use fusemax_dse::{FleetSpec, QueueOrder, RouterPolicy, SchedulerPolicy};
pub use objective::{ScenarioRanking, ServeObjective, ServeScore, Sla};
pub use report::{FaultStats, LatencyStats, ServeReport};
pub use sim::{RunSamples, ServeSim, ServeSimBuilder};
pub use table::ServiceTimeTable;
pub use traffic::{Arrivals, LengthMix, Request, Trace, TrafficSpec};
