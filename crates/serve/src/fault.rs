//! Deterministic, seeded fault injection for fleet serving.
//!
//! A [`FaultSpec`] is a replayable timeline of replica fail-stop,
//! recovery, and degraded-mode events scheduled on the simulated-seconds
//! clock — the same contract as [`crate::TrafficSpec`]: plain data, fully
//! determined by its inputs, and two runs of the same spec against the
//! same trace are bit-identical. An **empty** spec is the explicit no-op:
//! [`crate::Fleet`] short-circuits to the legacy fault-free code path, so
//! checked-in golden traces and reports stay byte-for-byte unchanged.
//!
//! The timeline compiles ([`FaultSpec::segments`]) into per-replica
//! *up-time segments*: half-open `[start, end)` windows during which the
//! chip is alive, each carrying a step function of degradation
//! multipliers (clock throttle scales compute, DRAM brownout scales
//! bandwidth-bound work). At equal timestamps recovery sorts before
//! failure, so a request arriving exactly when a replica comes back up
//! is routed to it — the merge-order contract documented in
//! `docs/DETERMINISM.md`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// What happens to a replica at a [`FaultEvent`]'s timestamp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Fail-stop: the replica dies at the event time. In-flight requests
    /// lose their K/V cache and re-enter the router with backoff; queued
    /// requests are re-routed (or shed under a watermark policy).
    Down,
    /// Recovery: the replica comes back up, healthy (multipliers reset
    /// to 1.0). At equal timestamps recovery sorts before failure and
    /// before request arrivals.
    Up,
    /// Clock throttle: compute runs `slowdown`× slower (≥ 1.0) until the
    /// next `Throttle`, `Up`, or `Down` on this replica.
    Throttle {
        /// Compute slowdown factor (1.0 = healthy, 2.0 = half speed).
        slowdown: f64,
    },
    /// DRAM-bandwidth brownout: bandwidth-bound work (decode, K/V wire
    /// transfers into this chip) runs `slowdown`× slower (≥ 1.0).
    Brownout {
        /// DRAM slowdown factor (1.0 = healthy, 2.0 = half bandwidth).
        slowdown: f64,
    },
}

impl FaultKind {
    /// Tie-break rank at equal timestamps: recovery first, fail-stop last,
    /// degradations in between (so `Up` then `Down` at time t means the
    /// chip bounces and ends dead, deterministically).
    fn order(&self) -> u8 {
        match self {
            FaultKind::Up => 0,
            FaultKind::Throttle { .. } => 1,
            FaultKind::Brownout { .. } => 2,
            FaultKind::Down => 3,
        }
    }

    fn token(&self) -> String {
        match self {
            FaultKind::Down => "down".into(),
            FaultKind::Up => "up".into(),
            FaultKind::Throttle { slowdown } => format!("throttle={slowdown}"),
            FaultKind::Brownout { slowdown } => format!("brownout={slowdown}"),
        }
    }
}

/// One scheduled event on the fault timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Simulated-seconds timestamp of the event.
    pub t_s: f64,
    /// Target replica (fleet chip index; applied modulo the fleet's chip
    /// count at run time, so one spec is reusable across fleet shapes).
    pub replica: usize,
    /// What happens.
    pub kind: FaultKind,
}

/// Retry policy for requests displaced by a replica failure:
/// deterministic exponential backoff with a bounded attempt budget.
///
/// A displaced request's attempt `a` (1-based) re-enters the router
/// `base_backoff_s * multiplier^(a-1)` seconds after the failure. Once
/// `a` would exceed `budget`, the request is shed instead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Backoff before the first retry, in seconds.
    pub base_backoff_s: f64,
    /// Geometric growth factor per additional attempt (≥ 1.0).
    pub multiplier: f64,
    /// Maximum number of retries per request (0 = never retry).
    pub budget: usize,
}

impl Default for RetryPolicy {
    /// 50 ms base backoff, doubling, at most 3 retries.
    fn default() -> Self {
        RetryPolicy { base_backoff_s: 0.05, multiplier: 2.0, budget: 3 }
    }
}

impl RetryPolicy {
    /// Backoff delay in seconds before attempt `attempt` (1-based).
    pub fn delay_s(&self, attempt: usize) -> f64 {
        self.base_backoff_s * self.multiplier.powi(attempt.saturating_sub(1) as i32)
    }
}

/// A deterministic, replayable fault-injection timeline plus the failure
/// semantics ([`RetryPolicy`], load-shedding watermark) that govern how
/// the fleet reacts to it.
///
/// The default / [`FaultSpec::none`] spec has no events and is the
/// contract-preserving no-op: [`crate::Fleet`] detects it and runs the
/// legacy byte-identical path.
///
/// # Example
///
/// ```
/// use fusemax_serve::{FaultKind, FaultSpec};
///
/// let spec = FaultSpec::none()
///     .down(2.5, 1)
///     .up(4.0, 1)
///     .with_shed_watermark(0.5);
/// assert!(!spec.is_empty());
/// assert!(spec.validate(10.0).is_ok());
/// assert_eq!(spec, FaultSpec::parse_events("t=2.5:replica=1:down;t=4.0:replica=1:up")
///     .unwrap()
///     .with_shed_watermark(0.5));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// The timeline, in insertion order (sorted internally at compile
    /// time by `(t_s, replica, kind)` with recovery first at ties).
    pub events: Vec<FaultEvent>,
    /// How displaced requests are retried.
    pub retry: RetryPolicy,
    /// Optional load-shedding watermark: when a failure drops the
    /// surviving-replica fraction strictly below this value, waiting
    /// (not-yet-admitted) requests displaced by that failure are shed
    /// instead of retried. `None` disables shedding on capacity loss.
    pub shed_watermark: Option<f64>,
}

impl Default for FaultSpec {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultSpec {
    /// The empty spec: no faults, legacy byte-identical replay.
    pub fn none() -> Self {
        FaultSpec { events: Vec::new(), retry: RetryPolicy::default(), shed_watermark: None }
    }

    /// `true` when the timeline has no events (the no-op contract; retry
    /// policy and watermark are irrelevant without failures).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The canonical single-failure scenario: replica `replica` fail-stops
    /// at `t_s` and never recovers.
    pub fn single_failure(t_s: f64, replica: usize) -> Self {
        Self::none().down(t_s, replica)
    }

    /// Appends a fail-stop event.
    pub fn down(mut self, t_s: f64, replica: usize) -> Self {
        self.events.push(FaultEvent { t_s, replica, kind: FaultKind::Down });
        self
    }

    /// Appends a recovery event.
    pub fn up(mut self, t_s: f64, replica: usize) -> Self {
        self.events.push(FaultEvent { t_s, replica, kind: FaultKind::Up });
        self
    }

    /// Appends a clock-throttle event (compute runs `slowdown`× slower).
    pub fn throttle(mut self, t_s: f64, replica: usize, slowdown: f64) -> Self {
        self.events.push(FaultEvent { t_s, replica, kind: FaultKind::Throttle { slowdown } });
        self
    }

    /// Appends a DRAM-brownout event (bandwidth runs `slowdown`× slower).
    pub fn brownout(mut self, t_s: f64, replica: usize, slowdown: f64) -> Self {
        self.events.push(FaultEvent { t_s, replica, kind: FaultKind::Brownout { slowdown } });
        self
    }

    /// Replaces the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the load-shedding watermark (surviving-capacity fraction in
    /// `[0, 1]` below which displaced waiting requests are shed).
    pub fn with_shed_watermark(mut self, watermark: f64) -> Self {
        self.shed_watermark = Some(watermark);
        self
    }

    /// Generates a seeded single-failure-plus-recovery scenario: one
    /// replica (seed-chosen among `replicas`) fail-stops at a seed-chosen
    /// time within the middle 80% of `horizon_s`, then recovers after a
    /// seed-chosen outage clamped to the horizon. Bit-identical per
    /// `(seed, replicas, horizon_s)`, mirroring [`crate::TrafficSpec`].
    ///
    /// # Panics
    ///
    /// Panics if `replicas == 0` or `horizon_s` is not a positive finite
    /// number.
    pub fn seeded(seed: u64, replicas: usize, horizon_s: f64) -> Self {
        assert!(replicas > 0, "a seeded fault needs at least one replica");
        assert!(
            horizon_s.is_finite() && horizon_s > 0.0,
            "seeded fault horizon must be positive and finite"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let replica = rng.gen_range(0.0..replicas as f64) as usize % replicas;
        let down_t = horizon_s * rng.gen_range(0.1..0.9);
        let outage = horizon_s * rng.gen_range(0.05..0.5);
        let up_t = (down_t + outage).min(horizon_s);
        Self::none().down(down_t, replica).up(up_t, replica)
    }

    /// Parses a `;`-separated event list in the `examples/serve.rs` CLI
    /// grammar: each event is `t=<secs>:replica=<idx>:<kind>` where
    /// `<kind>` is `down`, `up`, `throttle=<f>`, or `brownout=<f>`.
    ///
    /// ```
    /// use fusemax_serve::FaultSpec;
    /// let spec = FaultSpec::parse_events("t=2.5:replica=1:down; t=4:replica=1:up").unwrap();
    /// assert_eq!(spec.events.len(), 2);
    /// assert!(FaultSpec::parse_events("t=oops:replica=0:down").is_err());
    /// ```
    pub fn parse_events(text: &str) -> Result<Self, FaultSpecError> {
        let mut spec = Self::none();
        for raw in text.split(';') {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            let mut t_s = None;
            let mut replica = None;
            let mut kind = None;
            for token in raw.split(':') {
                let token = token.trim();
                let bad = || FaultSpecError::Parse { event: raw.to_string() };
                if let Some(v) = token.strip_prefix("t=") {
                    t_s = Some(v.parse::<f64>().map_err(|_| bad())?);
                } else if let Some(v) = token.strip_prefix("replica=") {
                    replica = Some(v.parse::<usize>().map_err(|_| bad())?);
                } else if token == "down" {
                    kind = Some(FaultKind::Down);
                } else if token == "up" {
                    kind = Some(FaultKind::Up);
                } else if let Some(v) = token.strip_prefix("throttle=") {
                    kind = Some(FaultKind::Throttle {
                        slowdown: v.parse::<f64>().map_err(|_| bad())?,
                    });
                } else if let Some(v) = token.strip_prefix("brownout=") {
                    kind = Some(FaultKind::Brownout {
                        slowdown: v.parse::<f64>().map_err(|_| bad())?,
                    });
                } else {
                    return Err(bad());
                }
            }
            match (t_s, replica, kind) {
                (Some(t_s), Some(replica), Some(kind)) => {
                    spec.events.push(FaultEvent { t_s, replica, kind });
                }
                _ => return Err(FaultSpecError::Parse { event: raw.to_string() }),
            }
        }
        Ok(spec)
    }

    /// Validates the spec against a trace horizon, returning the first
    /// problem as a typed, actionable error.
    ///
    /// Rejects non-finite or negative event times, event times beyond
    /// `horizon_s`, degradation slowdowns below 1.0 (or non-finite),
    /// watermarks outside `[0, 1]`, non-positive backoff or sub-1.0
    /// multipliers, and — the silent-starvation trap — a fail-stop
    /// timeline with retry budget 0 **and** shedding disabled (displaced
    /// requests could neither complete nor be counted as shed).
    pub fn validate(&self, horizon_s: f64) -> Result<(), FaultSpecError> {
        for e in &self.events {
            if !e.t_s.is_finite() || e.t_s < 0.0 {
                return Err(FaultSpecError::NonFiniteTime { t_s: e.t_s });
            }
            if e.t_s > horizon_s {
                return Err(FaultSpecError::TimeBeyondHorizon { t_s: e.t_s, horizon_s });
            }
            match e.kind {
                FaultKind::Throttle { slowdown } | FaultKind::Brownout { slowdown } => {
                    if !slowdown.is_finite() || slowdown < 1.0 {
                        return Err(FaultSpecError::SlowdownBelowOne { slowdown });
                    }
                }
                FaultKind::Down | FaultKind::Up => {}
            }
        }
        if let Some(w) = self.shed_watermark {
            if !w.is_finite() || !(0.0..=1.0).contains(&w) {
                return Err(FaultSpecError::WatermarkOutOfRange { watermark: w });
            }
        }
        if !self.retry.base_backoff_s.is_finite() || self.retry.base_backoff_s < 0.0 {
            return Err(FaultSpecError::BadBackoff { base_backoff_s: self.retry.base_backoff_s });
        }
        if !self.retry.multiplier.is_finite() || self.retry.multiplier < 1.0 {
            return Err(FaultSpecError::BadMultiplier { multiplier: self.retry.multiplier });
        }
        let any_down = self.events.iter().any(|e| matches!(e.kind, FaultKind::Down));
        if any_down && self.retry.budget == 0 && self.shed_watermark.is_none() {
            return Err(FaultSpecError::RetryExhaustedWithoutShedding);
        }
        Ok(())
    }

    /// The timeline in deterministic replay order: ascending time, then
    /// replica, then kind (recovery before degradation before failure).
    pub(crate) fn ordered_events(&self) -> Vec<FaultEvent> {
        let mut events = self.events.clone();
        events.sort_by(|a, b| {
            a.t_s
                .total_cmp(&b.t_s)
                .then(a.replica.cmp(&b.replica))
                .then(a.kind.order().cmp(&b.kind.order()))
        });
        events
    }

    /// Compiles the timeline into per-chip up-time [`Segment`]s for a
    /// fleet of `chips` replicas (event replica indices taken modulo
    /// `chips`). Every chip starts up at t = 0; `Down` closes the open
    /// segment, `Up` opens a fresh healthy one, degradations append a
    /// multiplier step to the open segment and are ignored while down.
    pub(crate) fn segments(&self, chips: usize) -> Vec<Vec<Segment>> {
        let mut done: Vec<Vec<Segment>> = vec![Vec::new(); chips];
        let mut open: Vec<Option<Segment>> =
            (0..chips).map(|_| Some(Segment::healthy_from(0.0))).collect();
        for e in self.ordered_events() {
            let k = e.replica % chips.max(1);
            match (e.kind, open[k].as_mut()) {
                (FaultKind::Down, Some(seg)) => {
                    seg.end_s = e.t_s;
                    // A zero-length bounce (up then down at the same t)
                    // still counts as a segment boundary; keep it so the
                    // chip is correctly dead afterwards.
                    done[k].push(open[k].take().expect("open"));
                }
                (FaultKind::Up, None) => {
                    open[k] = Some(Segment::healthy_from(e.t_s));
                }
                (FaultKind::Throttle { slowdown }, Some(seg)) => {
                    let (_, _, dram) = seg.multipliers_at(e.t_s);
                    seg.slowdowns.push((e.t_s, slowdown, dram));
                }
                (FaultKind::Brownout { slowdown }, Some(seg)) => {
                    let (_, compute, _) = seg.multipliers_at(e.t_s);
                    seg.slowdowns.push((e.t_s, compute, slowdown));
                }
                // Duplicate down while down, up while up, or degradation
                // while down: deterministic no-ops.
                _ => {}
            }
        }
        for (k, seg) in open.into_iter().enumerate() {
            if let Some(seg) = seg {
                done[k].push(seg);
            }
        }
        done
    }

    /// Renders the timeline back into the CLI grammar (round-trips
    /// through [`FaultSpec::parse_events`] for finite times).
    pub fn render_events(&self) -> String {
        self.events
            .iter()
            .map(|e| format!("t={}:replica={}:{}", e.t_s, e.replica, e.kind.token()))
            .collect::<Vec<_>>()
            .join(";")
    }
}

/// One continuous up-time window of a replica: alive on `[start_s,
/// end_s)` with a step function of degradation multipliers.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Segment {
    /// When the replica came up (inclusive).
    pub start_s: f64,
    /// When the replica fail-stops (exclusive; `f64::INFINITY` when it
    /// stays up forever).
    pub end_s: f64,
    /// Multiplier steps `(from_t_s, compute_mult, dram_mult)`, ascending
    /// by time; the first entry is the healthy `(start_s, 1.0, 1.0)`.
    pub slowdowns: Vec<(f64, f64, f64)>,
}

impl Segment {
    fn healthy_from(t_s: f64) -> Self {
        Segment { start_s: t_s, end_s: f64::INFINITY, slowdowns: vec![(t_s, 1.0, 1.0)] }
    }

    /// `true` while the replica is alive at `t` (start-inclusive,
    /// end-exclusive: at the instant of recovery the chip is up; at the
    /// instant of failure it is down).
    pub fn covers(&self, t: f64) -> bool {
        self.start_s <= t && t < self.end_s
    }

    /// `(step_time, compute_mult, dram_mult)` in force at time `t` (the
    /// last step at or before `t`; the healthy step before any events).
    pub fn multipliers_at(&self, t: f64) -> (f64, f64, f64) {
        let mut current = self.slowdowns[0];
        for &step in &self.slowdowns {
            if step.0 <= t {
                current = step;
            } else {
                break;
            }
        }
        current
    }

    /// The degradation step function restricted to this segment, for the
    /// per-replica engine run.
    pub fn replica_faults(&self) -> ReplicaFaults {
        ReplicaFaults { horizon_s: self.end_s, slowdowns: self.slowdowns.clone() }
    }
}

/// What one replica's engine run needs to know about its own faults: when
/// it dies (`horizon_s`) and how it is degraded over time. A fault-free
/// run uses [`ReplicaFaults::none`] (infinite horizon, healthy forever).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ReplicaFaults {
    /// Simulated time at which this replica fail-stops; iterations that
    /// would finish after this instant never commit.
    pub horizon_s: f64,
    /// Multiplier steps `(from_t_s, compute_mult, dram_mult)`, ascending.
    pub slowdowns: Vec<(f64, f64, f64)>,
}

impl ReplicaFaults {
    /// Healthy forever — the engine's faulted path with this value is
    /// value-identical to the legacy path (`×1.0` is exact in IEEE 754).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn none() -> Self {
        ReplicaFaults { horizon_s: f64::INFINITY, slowdowns: vec![(0.0, 1.0, 1.0)] }
    }

    /// `(compute_mult, dram_mult)` in force at time `t`.
    pub fn multipliers_at(&self, t: f64) -> (f64, f64) {
        let mut current = (1.0, 1.0);
        for &(from, cm, dm) in &self.slowdowns {
            if from <= t {
                current = (cm, dm);
            } else {
                break;
            }
        }
        current
    }
}

/// Typed rejection from [`FaultSpec::validate`] / [`FaultSpec::parse_events`].
#[derive(Debug, Clone, PartialEq)]
pub enum FaultSpecError {
    /// An event string did not match `t=<secs>:replica=<idx>:<kind>`.
    Parse {
        /// The offending event text.
        event: String,
    },
    /// An event time is negative, NaN, or infinite.
    NonFiniteTime {
        /// The offending time.
        t_s: f64,
    },
    /// An event is scheduled after the trace's last arrival — it could
    /// never fire and almost certainly indicates a units mistake.
    TimeBeyondHorizon {
        /// The offending time.
        t_s: f64,
        /// The trace horizon it exceeds.
        horizon_s: f64,
    },
    /// A throttle/brownout slowdown is below 1.0 (which would make the
    /// "degraded" chip faster than healthy) or non-finite.
    SlowdownBelowOne {
        /// The offending slowdown.
        slowdown: f64,
    },
    /// The shed watermark is outside `[0, 1]` or non-finite.
    WatermarkOutOfRange {
        /// The offending watermark.
        watermark: f64,
    },
    /// The retry base backoff is negative or non-finite.
    BadBackoff {
        /// The offending backoff.
        base_backoff_s: f64,
    },
    /// The retry multiplier is below 1.0 or non-finite.
    BadMultiplier {
        /// The offending multiplier.
        multiplier: f64,
    },
    /// The timeline contains a fail-stop but the retry budget is 0 and
    /// shedding is disabled: displaced requests could neither complete
    /// nor be shed, silently violating conservation.
    RetryExhaustedWithoutShedding,
}

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultSpecError::Parse { event } => {
                write!(f, "cannot parse fault event `{event}` (want t=<secs>:replica=<idx>:down|up|throttle=<f>|brownout=<f>)")
            }
            FaultSpecError::NonFiniteTime { t_s } => {
                write!(f, "fault event time {t_s} must be finite and non-negative")
            }
            FaultSpecError::TimeBeyondHorizon { t_s, horizon_s } => {
                write!(f, "fault event at t={t_s}s is beyond the trace horizon ({horizon_s}s)")
            }
            FaultSpecError::SlowdownBelowOne { slowdown } => {
                write!(f, "degradation slowdown {slowdown} must be finite and >= 1.0")
            }
            FaultSpecError::WatermarkOutOfRange { watermark } => {
                write!(f, "shed watermark {watermark} must lie in [0, 1]")
            }
            FaultSpecError::BadBackoff { base_backoff_s } => {
                write!(f, "retry base backoff {base_backoff_s}s must be finite and non-negative")
            }
            FaultSpecError::BadMultiplier { multiplier } => {
                write!(f, "retry multiplier {multiplier} must be finite and >= 1.0")
            }
            FaultSpecError::RetryExhaustedWithoutShedding => {
                write!(
                    f,
                    "retry budget is 0 and shedding is disabled: requests displaced by a \
                     fail-stop could neither complete nor be shed (set a retry budget or a \
                     shed watermark)"
                )
            }
        }
    }
}

impl std::error::Error for FaultSpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_spec_is_the_no_op() {
        assert!(FaultSpec::none().is_empty());
        assert!(FaultSpec::default().is_empty());
        assert!(!FaultSpec::single_failure(1.0, 0).is_empty());
        assert!(FaultSpec::none().validate(10.0).is_ok());
    }

    #[test]
    fn seeded_scenarios_are_bit_identical_per_seed() {
        let a = FaultSpec::seeded(7, 4, 10.0);
        let b = FaultSpec::seeded(7, 4, 10.0);
        assert_eq!(a, b);
        assert_ne!(a, FaultSpec::seeded(8, 4, 10.0));
        assert!(a.validate(10.0).is_ok());
        // Exactly one down followed by one up on the same replica.
        assert_eq!(a.events.len(), 2);
        assert_eq!(a.events[0].kind, FaultKind::Down);
        assert_eq!(a.events[1].kind, FaultKind::Up);
        assert_eq!(a.events[0].replica, a.events[1].replica);
        assert!(a.events[0].t_s < a.events[1].t_s);
        assert!(a.events[0].replica < 4);
    }

    #[test]
    fn parse_round_trips_and_rejects_nonsense() {
        let spec = FaultSpec::parse_events(
            "t=2.5:replica=1:down; t=4:replica=1:up;t=1:replica=0:throttle=2;t=3:replica=2:brownout=1.5",
        )
        .unwrap();
        assert_eq!(spec.events.len(), 4);
        assert_eq!(spec.events[0], FaultEvent { t_s: 2.5, replica: 1, kind: FaultKind::Down });
        assert_eq!(
            spec.events[3],
            FaultEvent { t_s: 3.0, replica: 2, kind: FaultKind::Brownout { slowdown: 1.5 } }
        );
        let again = FaultSpec::parse_events(&spec.render_events()).unwrap();
        assert_eq!(again, spec);
        for bad in ["t=x:replica=0:down", "replica=0:down", "t=1:replica=0:sideways", "t=1:down"] {
            assert!(
                matches!(FaultSpec::parse_events(bad), Err(FaultSpecError::Parse { .. })),
                "{bad} should fail to parse"
            );
        }
        assert!(FaultSpec::parse_events("").unwrap().is_empty());
    }

    #[test]
    fn validate_rejects_each_class_of_nonsense() {
        let horizon = 10.0;
        let cases: Vec<(FaultSpec, FaultSpecError)> = vec![
            (
                FaultSpec::single_failure(f64::NAN, 0),
                FaultSpecError::NonFiniteTime { t_s: f64::NAN },
            ),
            (FaultSpec::single_failure(-1.0, 0), FaultSpecError::NonFiniteTime { t_s: -1.0 }),
            (
                FaultSpec::single_failure(20.0, 0),
                FaultSpecError::TimeBeyondHorizon { t_s: 20.0, horizon_s: horizon },
            ),
            (
                FaultSpec::none().throttle(1.0, 0, 0.5),
                FaultSpecError::SlowdownBelowOne { slowdown: 0.5 },
            ),
            (
                FaultSpec::none().brownout(1.0, 0, f64::NAN),
                FaultSpecError::SlowdownBelowOne { slowdown: f64::NAN },
            ),
            (
                FaultSpec::none().with_shed_watermark(1.5),
                FaultSpecError::WatermarkOutOfRange { watermark: 1.5 },
            ),
            (
                FaultSpec::none()
                    .with_retry(RetryPolicy { base_backoff_s: -1.0, ..RetryPolicy::default() }),
                FaultSpecError::BadBackoff { base_backoff_s: -1.0 },
            ),
            (
                FaultSpec::none()
                    .with_retry(RetryPolicy { multiplier: 0.5, ..RetryPolicy::default() }),
                FaultSpecError::BadMultiplier { multiplier: 0.5 },
            ),
            (
                FaultSpec::single_failure(1.0, 0)
                    .with_retry(RetryPolicy { budget: 0, ..RetryPolicy::default() }),
                FaultSpecError::RetryExhaustedWithoutShedding,
            ),
        ];
        for (spec, want) in cases {
            let got = spec.validate(horizon).expect_err("should reject");
            // NaN != NaN, so compare rendered messages.
            assert_eq!(got.to_string(), want.to_string(), "spec {spec:?}");
        }
        // Budget 0 is fine once shedding is enabled.
        assert!(FaultSpec::single_failure(1.0, 0)
            .with_retry(RetryPolicy { budget: 0, ..RetryPolicy::default() })
            .with_shed_watermark(1.0)
            .validate(horizon)
            .is_ok());
    }

    #[test]
    fn segments_compile_down_up_and_degradations() {
        let spec = FaultSpec::none()
            .down(2.0, 1)
            .up(5.0, 1)
            .throttle(1.0, 0, 2.0)
            .brownout(3.0, 0, 1.5)
            .down(8.0, 1);
        let segs = spec.segments(2);
        // Chip 0: one open segment with two degradation steps.
        assert_eq!(segs[0].len(), 1);
        let s0 = &segs[0][0];
        assert_eq!(s0.start_s, 0.0);
        assert_eq!(s0.end_s, f64::INFINITY);
        assert_eq!(s0.multipliers_at(0.5), (0.0, 1.0, 1.0));
        assert_eq!(s0.multipliers_at(1.0), (1.0, 2.0, 1.0));
        assert_eq!(s0.multipliers_at(4.0), (3.0, 2.0, 1.5), "brownout keeps the throttle");
        // Chip 1: up [0,2), up [5,8).
        assert_eq!(segs[1].len(), 2);
        assert_eq!((segs[1][0].start_s, segs[1][0].end_s), (0.0, 2.0));
        assert_eq!((segs[1][1].start_s, segs[1][1].end_s), (5.0, 8.0));
        assert!(segs[1][0].covers(0.0) && !segs[1][0].covers(2.0), "half-open [start, end)");
        assert!(segs[1][1].covers(5.0), "up at the instant of recovery");
    }

    #[test]
    fn duplicate_and_while_down_events_are_no_ops() {
        let spec = FaultSpec::none()
            .down(1.0, 0)
            .down(2.0, 0) // already down
            .throttle(3.0, 0, 2.0) // degraded while down: ignored
            .up(4.0, 0)
            .up(5.0, 0); // already up
        let segs = spec.segments(1);
        assert_eq!(segs[0].len(), 2);
        assert_eq!((segs[0][0].start_s, segs[0][0].end_s), (0.0, 1.0));
        assert_eq!(segs[0][1].start_s, 4.0);
        assert_eq!(segs[0][1].slowdowns, vec![(4.0, 1.0, 1.0)], "throttle while down ignored");
    }

    #[test]
    fn equal_timestamp_order_is_up_before_down() {
        // A bounce at t=3: up first (no-op, already up), then down — the
        // chip ends dead. The reverse order would leave it alive.
        let spec = FaultSpec::none().down(3.0, 0).up(3.0, 0);
        let ordered = spec.ordered_events();
        assert_eq!(ordered[0].kind, FaultKind::Up);
        assert_eq!(ordered[1].kind, FaultKind::Down);
        let segs = spec.segments(1);
        assert_eq!(segs[0].len(), 1);
        assert_eq!(segs[0][0].end_s, 3.0);
    }

    #[test]
    fn replica_indices_wrap_modulo_chips() {
        let spec = FaultSpec::single_failure(1.0, 5);
        let segs = spec.segments(2);
        assert_eq!(segs[1][0].end_s, 1.0, "replica 5 maps to chip 1 of 2");
        assert_eq!(segs[0][0].end_s, f64::INFINITY);
    }

    #[test]
    fn retry_backoff_is_exponential() {
        let r = RetryPolicy::default();
        assert_eq!(r.delay_s(1), 0.05);
        assert_eq!(r.delay_s(2), 0.1);
        assert_eq!(r.delay_s(3), 0.2);
    }

    #[test]
    fn replica_faults_step_function() {
        let rf = ReplicaFaults {
            horizon_s: 10.0,
            slowdowns: vec![(0.0, 1.0, 1.0), (2.0, 2.0, 1.0), (4.0, 2.0, 3.0)],
        };
        assert_eq!(rf.multipliers_at(0.0), (1.0, 1.0));
        assert_eq!(rf.multipliers_at(2.0), (2.0, 1.0));
        assert_eq!(rf.multipliers_at(9.0), (2.0, 3.0));
        assert_eq!(ReplicaFaults::none().multipliers_at(1e9), (1.0, 1.0));
    }
}
