//! Fleet-scale serving: a deterministic router shards one [`Trace`]
//! across N replica chips of the same design, per-replica reports merge
//! into one fleet-level [`ServeReport`] with **exact** quantiles, and a
//! disaggregated topology dedicates prefill chips feeding decode chips
//! with the K/V handoff charged at DRAM bandwidth.
//!
//! # Routing
//!
//! All three [`RouterPolicy`]s are pure functions of the trace and the
//! design (no RNG), so a fleet replay is bit-identical by construction:
//!
//! * **Round-robin** — request `i` (in arrival order) goes to replica
//!   `i mod N`.
//! * **Least-loaded** — greedy assignment to the replica with the
//!   smallest accumulated *estimated* service seconds (from the shared
//!   [`ServiceTimeTable`]), ties to the lowest index.
//! * **Shortest-prompt** — length-class affinity: requests are ranked by
//!   prompt length and split into N contiguous classes, so short prompts
//!   share replicas instead of queueing behind long ones.
//!
//! # Merging
//!
//! Fleet quantiles are computed over the **union of raw per-request
//! samples** ([`crate::RunSamples`]), never by averaging per-replica
//! summaries — so the merged p99 is exactly the p99 of the whole trace.
//! A 1-replica fleet reproduces the plain [`ServeSim`] report
//! bit-for-bit (test-enforced).
//!
//! # Disaggregation
//!
//! Under [`FleetSpec::disaggregated`]`(p, d)`, the router shards
//! arrivals across the `p` prefill chips, which serve prompt-only work;
//! each finished prompt's K/V cache (the full-model
//! [`fusemax_workloads::TransformerConfig::kv_bytes_per_token`] ×
//! prompt tokens) then crosses to a decode chip in time
//! `bytes / dram_bw_bytes_per_sec`, and the `d` decode chips run the
//! engine in decode-only mode. TTFT comes from the prefill stage,
//! TPOT from the decode stage, and end-to-end latency spans both plus
//! the transfer wire time.

use crate::attribution::LatencyAttribution;
use crate::fault::{FaultKind, FaultSpec, Segment};
use crate::report::{FaultStats, LatencyStats, ServeReport};
use crate::sim::{RunSamples, ServeSim};
use crate::table::ServiceTimeTable;
use crate::traffic::{Request, Trace};
use fusemax_dse::{DesignPoint, FleetSpec, RouterPolicy};
use fusemax_model::ModelParams;
use fusemax_telemetry::{Event, Recorder, ServeEvent, VecSink};
use std::collections::HashMap;

/// A data-parallel (or prefill/decode-disaggregated) fleet of identical
/// replica chips serving one trace.
///
/// # Example
///
/// ```
/// use fusemax_model::{ConfigKind, ModelParams};
/// use fusemax_serve::{Arrivals, Fleet, FleetSpec, LengthMix, ServeSim, TrafficSpec};
/// use fusemax_workloads::TransformerConfig;
///
/// let trace = TrafficSpec {
///     arrivals: Arrivals::Poisson { rate_per_s: 120.0 },
///     prompt_mix: LengthMix::new([(512, 3.0), (4096, 1.0)]),
///     output_mix: LengthMix::uniform([8, 32]),
///     requests: 60,
/// }
/// .generate(7);
///
/// let replica = ServeSim::builder(
///     ConfigKind::FuseMaxBinding,
///     ConfigKind::FuseMaxBinding.default_arch(),
///     TransformerConfig::bert(),
///     ModelParams::default(),
/// )
/// .build();
/// let fleet = Fleet::new(FleetSpec::replicated(4), replica);
/// let report = fleet.run(&trace);
/// assert_eq!(report.completed, 60);
/// assert_eq!(report, fleet.run(&trace), "fleet replay is bit-identical");
/// ```
#[derive(Debug, Clone)]
pub struct Fleet {
    spec: FleetSpec,
    template: ServeSim,
    recorder: Recorder,
    faults: FaultSpec,
}

/// A fleet run's full breakdown: the merged fleet-level report plus
/// per-replica reports, the router's assignment, K/V-transfer totals,
/// and (when traced) each replica's event stream.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// The fleet-level report: summed throughput work, max makespan,
    /// utilization over all chips, exact quantiles over the union of
    /// per-request samples.
    pub merged: ServeReport,
    /// One report per chip — replicas in index order; for a
    /// disaggregated fleet, the `p` prefill chips then the `d` decode
    /// chips.
    pub replicas: Vec<ServeReport>,
    /// Stage-1 replica index per trace request (arrival order) — for a
    /// disaggregated fleet, the prefill-chip assignment.
    pub routes: Vec<usize>,
    /// Total K/V bytes moved between prefill and decode chips (0 for
    /// non-disaggregated fleets).
    pub kv_transfer_bytes: u64,
    /// Total wire seconds of K/V transfer at DRAM bandwidth (0 for
    /// non-disaggregated fleets).
    pub kv_transfer_s: f64,
    /// `(track name, events)` per chip when the fleet carries an enabled
    /// recorder (empty otherwise) — feed alongside the router stream to
    /// [`fusemax_telemetry::fleet_trace_json`].
    pub replica_events: Vec<(String, Vec<Event>)>,
    /// Per-request exact latency attributions over the whole fleet. For
    /// a disaggregated fleet each multi-token request's TTFT buckets come
    /// from its prefill chip, the K/V wire is charged explicitly, and the
    /// decode bucket absorbs the decode chip's own queue wait. Under
    /// fault injection, retried requests carry the named `retry` bucket
    /// and shed requests carry no attribution at all.
    pub attributions: Vec<LatencyAttribution>,
    /// Fault-handling counters: retries dispatched, requests shed, and
    /// availability. The [`Default`] value for fault-free runs.
    pub faults: FaultStats,
    /// Trace request ids shed under fault injection (ascending; empty
    /// for fault-free runs). `completed + shed_ids.len()` always equals
    /// the trace length — the conservation contract.
    pub shed_ids: Vec<usize>,
}

/// One chip's share of the fleet's work: the imbalance row of
/// [`FleetReport::imbalance`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaImbalance {
    /// Chip index (prefill chips before decode chips when disaggregated).
    pub replica: usize,
    /// Requests this chip completed.
    pub completed: usize,
    /// Busy seconds on this chip.
    pub busy_s: f64,
    /// This chip's fraction of the fleet's total busy seconds.
    pub busy_share: f64,
    /// This chip's own utilization (busy over its makespan).
    pub utilization: f64,
}

impl FleetReport {
    /// Attributes fleet imbalance per replica: each chip's completed
    /// requests, busy seconds, share of total busy time, and utilization
    /// — the forensic view behind a skewed router assignment.
    pub fn imbalance(&self) -> Vec<ReplicaImbalance> {
        let total_busy: f64 = self.replicas.iter().map(|r| r.busy_s).sum();
        self.replicas
            .iter()
            .enumerate()
            .map(|(replica, r)| ReplicaImbalance {
                replica,
                completed: r.completed,
                busy_s: r.busy_s,
                busy_share: if total_busy > 0.0 { r.busy_s / total_busy } else { 0.0 },
                utilization: r.utilization,
            })
            .collect()
    }

    /// Max-over-mean busy seconds across chips: `1.0` is a perfectly
    /// balanced fleet; `N` means one chip did all the work.
    pub fn imbalance_ratio(&self) -> f64 {
        if self.replicas.is_empty() {
            return 1.0;
        }
        let mean: f64 =
            self.replicas.iter().map(|r| r.busy_s).sum::<f64>() / self.replicas.len() as f64;
        if mean <= 0.0 {
            return 1.0;
        }
        self.replicas.iter().map(|r| r.busy_s).fold(0.0f64, f64::max) / mean
    }
}

impl Fleet {
    /// A fleet of `spec.chips()` copies of `replica` (its design,
    /// scheduler policy, and workload are shared by every chip).
    pub fn new(spec: FleetSpec, replica: ServeSim) -> Self {
        Fleet { spec, template: replica, recorder: Recorder::disabled(), faults: FaultSpec::none() }
    }

    /// The fleet a DSE design point describes: the point's per-chip
    /// design under its fleet axis (`point.fleet`).
    pub fn for_point(point: &DesignPoint, params: &ModelParams) -> Self {
        Fleet::new(point.fleet, ServeSim::for_point(point, params))
    }

    /// Attaches a telemetry recorder. The fleet emits router events
    /// ([`ServeEvent::Route`], [`ServeEvent::KvTransfer`]) into it, and
    /// [`FleetReport::replica_events`] additionally captures each chip's
    /// own stream. Instrumentation never changes the report.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Injects a deterministic fault timeline. An empty spec
    /// ([`FaultSpec::none`]) is the contract-preserving no-op: the run
    /// takes the legacy fault-free code path and reproduces the golden
    /// traces and reports byte-for-byte (test-enforced). A non-empty
    /// spec is validated against the trace horizon at run time.
    pub fn with_faults(mut self, faults: FaultSpec) -> Self {
        self.faults = faults;
        self
    }

    /// The fleet shape.
    pub fn spec(&self) -> FleetSpec {
        self.spec
    }

    /// The fault timeline this fleet replays under.
    pub fn faults(&self) -> &FaultSpec {
        &self.faults
    }

    /// The stage-1 router assignment for `trace`: one replica index per
    /// request, in arrival order. Every request is routed exactly once
    /// — the conservation property the fleet proptests pin down. For a
    /// disaggregated fleet this is the prefill-chip assignment.
    pub fn route(&self, trace: &Trace) -> Vec<usize> {
        let costs = match self.spec.router {
            RouterPolicy::LeastLoaded => Some(self.template.service_times(trace)),
            _ => None,
        };
        self.stage1_routes(trace, costs.as_ref())
    }

    /// Serves `trace` on the fleet and returns the merged fleet-level
    /// report.
    pub fn run(&self, trace: &Trace) -> ServeReport {
        self.run_detailed(trace).merged
    }

    /// Serves `trace` and returns the full per-replica breakdown.
    ///
    /// # Panics
    ///
    /// Panics if a non-empty fault spec fails
    /// [`FaultSpec::validate`] against the trace horizon.
    pub fn run_detailed(&self, trace: &Trace) -> FleetReport {
        let costs = self.template.service_times(trace);
        if self.faults.is_empty() {
            // Fault-free: the legacy byte-identical paths, untouched.
            return match self.spec.prefill_decode {
                None => self.run_replicated(trace, &costs),
                Some((p, d)) => self.run_disaggregated(trace, &costs, p.max(1), d.max(1)),
            };
        }
        if let Err(e) = self.faults.validate(trace.last_arrival_s()) {
            panic!("invalid fault spec: {e}");
        }
        match self.spec.prefill_decode {
            None => self.run_replicated_faulted(trace, &costs),
            Some((p, d)) => self.run_disaggregated_faulted(trace, &costs, p.max(1), d.max(1)),
        }
    }

    /// How many chips stage-1 routing spreads over.
    fn stage1_width(&self) -> usize {
        match self.spec.prefill_decode {
            Some((p, _)) => p.max(1),
            None => self.spec.replicas.max(1),
        }
    }

    fn stage1_routes(&self, trace: &Trace, costs: Option<&ServiceTimeTable>) -> Vec<usize> {
        let est = |r: &Request| -> f64 {
            let costs = costs.expect("least-loaded routing needs a service-time table");
            let decode = if r.output_tokens >= 2 {
                (r.output_tokens - 1) as f64 * costs.decode_seconds(r.prompt_tokens + 1)
            } else {
                0.0
            };
            costs.prefill_seconds(r.prompt_tokens) + decode
        };
        route_requests(self.spec.router, &trace.requests, self.stage1_width(), &est)
    }

    /// One replica chip's run over its sub-trace, optionally traced.
    fn run_replica(
        &self,
        name: String,
        sub: &Trace,
        costs: &ServiceTimeTable,
        start_prefilled: bool,
        replica_events: &mut Vec<(String, Vec<Event>)>,
    ) -> (ServeReport, RunSamples) {
        let (recorder, sink) = if self.recorder.is_enabled() {
            let (recorder, sink) = VecSink::recorder();
            (recorder, Some(sink))
        } else {
            (Recorder::disabled(), None)
        };
        let sim = self.template.fleet_replica(recorder, start_prefilled);
        let out = sim.run_sampled_with(costs, sub);
        if let Some(sink) = sink {
            replica_events.push((name, sink.events()));
        }
        out
    }

    fn run_replicated(&self, trace: &Trace, costs: &ServiceTimeTable) -> FleetReport {
        let n = self.spec.replicas.max(1);
        let routes = self.stage1_routes(trace, Some(costs));
        let mut subs: Vec<Trace> = vec![Trace::default(); n];
        for (i, r) in trace.requests.iter().enumerate() {
            let (at, req, replica) = (r.arrival_s, r.id as u64, routes[i]);
            self.recorder.emit(|| Event::serve(at, ServeEvent::Route { req, replica }));
            subs[replica].requests.push(*r);
        }

        let mut replicas = Vec::with_capacity(n);
        let mut replica_events = Vec::new();
        let (mut ttft, mut tpot, mut e2e) = (Vec::new(), Vec::new(), Vec::new());
        let mut attributions = Vec::with_capacity(trace.len());
        let (mut completed, mut output_tokens) = (0usize, 0usize);
        for (k, sub) in subs.iter().enumerate() {
            let (report, samples) =
                self.run_replica(format!("replica {k}"), sub, costs, false, &mut replica_events);
            completed += report.completed;
            output_tokens += report.output_tokens;
            replicas.push(report);
            ttft.extend_from_slice(&samples.ttft);
            tpot.extend_from_slice(&samples.tpot);
            e2e.extend_from_slice(&samples.e2e);
            attributions.extend(samples.attributions);
        }
        let merged =
            merge_reports(&replicas, self.spec.chips(), completed, output_tokens, ttft, tpot, e2e);
        FleetReport {
            merged,
            replicas,
            routes,
            kv_transfer_bytes: 0,
            kv_transfer_s: 0.0,
            replica_events,
            attributions,
            faults: FaultStats::default(),
            shed_ids: Vec::new(),
        }
    }

    fn run_disaggregated(
        &self,
        trace: &Trace,
        costs: &ServiceTimeTable,
        p: usize,
        d: usize,
    ) -> FleetReport {
        let routes = self.stage1_routes(trace, Some(costs));

        // Stage 1: the prefill chips serve prompt-only versions of every
        // request (prefill produces the first token, so `output = 1`
        // completes exactly at prefill end).
        let mut prefill_subs: Vec<Trace> = vec![Trace::default(); p];
        for (i, r) in trace.requests.iter().enumerate() {
            let (at, req, replica) = (r.arrival_s, r.id as u64, routes[i]);
            self.recorder.emit(|| Event::serve(at, ServeEvent::Route { req, replica }));
            prefill_subs[replica].requests.push(Request { output_tokens: 1, ..*r });
        }

        let mut replicas = Vec::with_capacity(p + d);
        let mut replica_events = Vec::new();
        let mut ttft = Vec::with_capacity(trace.len());
        let mut done_at: HashMap<usize, f64> = HashMap::with_capacity(trace.len());
        let mut prefill_attr: HashMap<usize, LatencyAttribution> =
            HashMap::with_capacity(trace.len());
        for (k, sub) in prefill_subs.iter().enumerate() {
            let (report, samples) =
                self.run_replica(format!("prefill {k}"), sub, costs, false, &mut replica_events);
            replicas.push(report);
            ttft.extend_from_slice(&samples.ttft);
            done_at.extend(samples.completions.iter().copied());
            prefill_attr.extend(samples.attributions.into_iter().map(|a| (a.req, a)));
        }

        // Requests whose single output token was produced by prefill are
        // done; the rest hand their K/V cache to a decode chip, charged
        // at DRAM bandwidth. The full-model cache moves — every layer's
        // K/V for the prompt — not just the per-layer resident slice.
        let arch = self.template.arch();
        let kv_per_token = self.template.workload().kv_bytes_per_token(arch.word_bytes);
        let dram_bw = arch.dram_bw_bytes_per_sec;
        let mut e2e: Vec<f64> = Vec::with_capacity(trace.len());
        let mut attributions: Vec<LatencyAttribution> = Vec::with_capacity(trace.len());
        let (mut kv_transfer_bytes, mut kv_transfer_s) = (0u64, 0.0f64);
        let mut kv_seconds_of: HashMap<usize, f64> = HashMap::new();
        let mut decode_all: Vec<Request> = Vec::new();
        for r in &trace.requests {
            let prefill_done = done_at[&r.id];
            if r.output_tokens <= 1 {
                e2e.push(prefill_done - r.arrival_s);
                // Prefill produced the whole output: the prefill-stage
                // attribution is the request's attribution.
                if let Some(a) = prefill_attr.remove(&r.id) {
                    attributions.push(a);
                }
                continue;
            }
            let bytes = kv_per_token * r.prompt_tokens as u64;
            let seconds = bytes as f64 / dram_bw;
            kv_transfer_bytes += bytes;
            kv_transfer_s += seconds;
            kv_seconds_of.insert(r.id, seconds);
            let req = r.id as u64;
            self.recorder.emit(|| {
                Event::serve(prefill_done, ServeEvent::KvTransfer { req, bytes, seconds })
            });
            decode_all.push(Request { arrival_s: prefill_done + seconds, ..*r });
        }
        // The engine consumes arrivals in order; handoffs are not in
        // trace order, so sort (ties by id — deterministic).
        decode_all.sort_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s).then(a.id.cmp(&b.id)));

        // Stage 2: route the handoffs across the decode chips and run
        // them decode-only.
        let est = |r: &Request| -> f64 {
            (r.output_tokens - 1) as f64 * costs.decode_seconds(r.prompt_tokens + 1)
        };
        let decode_routes = route_requests(self.spec.router, &decode_all, d, &est);
        let mut decode_subs: Vec<Trace> = vec![Trace::default(); d];
        for (j, r) in decode_all.iter().enumerate() {
            let (at, req, replica) = (r.arrival_s, r.id as u64, p + decode_routes[j]);
            self.recorder.emit(|| Event::serve(at, ServeEvent::Route { req, replica }));
            decode_subs[decode_routes[j]].requests.push(*r);
        }
        let arrival_of: HashMap<usize, f64> =
            trace.requests.iter().map(|r| (r.id, r.arrival_s)).collect();
        let mut tpot = Vec::new();
        let mut output_tokens: usize =
            trace.requests.iter().filter(|r| r.output_tokens <= 1).map(|r| r.output_tokens).sum();
        for (k, sub) in decode_subs.iter().enumerate() {
            let (report, samples) =
                self.run_replica(format!("decode {k}"), sub, costs, true, &mut replica_events);
            output_tokens += report.output_tokens;
            replicas.push(report);
            tpot.extend_from_slice(&samples.tpot);
            for &(id, done) in &samples.completions {
                let e2e_s = done - arrival_of[&id];
                e2e.push(e2e_s);
                attributions.push(LatencyAttribution::with_kv_handoff(
                    &prefill_attr[&id],
                    kv_seconds_of[&id],
                    e2e_s,
                ));
            }
        }

        let completed = e2e.len();
        let merged =
            merge_reports(&replicas, self.spec.chips(), completed, output_tokens, ttft, tpot, e2e);
        FleetReport {
            merged,
            replicas,
            routes,
            kv_transfer_bytes,
            kv_transfer_s,
            replica_events,
            attributions,
            faults: FaultStats::default(),
            shed_ids: Vec::new(),
        }
    }

    /// Narrates the fault timeline (in replay order) onto the fleet
    /// recorder before any routing — the stream-order contract in
    /// `docs/DETERMINISM.md`.
    fn narrate_faults(&self, chips: usize) {
        for e in self.faults.ordered_events() {
            let replica = e.replica % chips;
            let t = e.t_s;
            match e.kind {
                FaultKind::Down => {
                    self.recorder.emit(|| Event::serve(t, ServeEvent::ReplicaDown { replica }));
                }
                FaultKind::Up => {
                    self.recorder.emit(|| Event::serve(t, ServeEvent::ReplicaUp { replica }));
                }
                FaultKind::Throttle { slowdown } => {
                    self.recorder.emit(|| {
                        Event::serve(t, ServeEvent::Degraded { replica, slowdown, dram: false })
                    });
                }
                FaultKind::Brownout { slowdown } => {
                    self.recorder.emit(|| {
                        Event::serve(t, ServeEvent::Degraded { replica, slowdown, dram: true })
                    });
                }
            }
        }
    }

    /// The failure-aware replicated path: one segment sweep over the
    /// whole fleet, with in-sweep retry/re-route of displaced requests.
    fn run_replicated_faulted(&self, trace: &Trace, costs: &ServiceTimeTable) -> FleetReport {
        let n = self.spec.replicas.max(1);
        let segs = self.faults.segments(n);
        self.narrate_faults(n);
        let base_routes = self.stage1_routes(trace, Some(costs));
        let instances: Vec<PendInst> = trace
            .requests
            .iter()
            .map(|r| PendInst { req: *r, orig_arrival_s: r.arrival_s, attempt: 0 })
            .collect();
        let mut aggs: Vec<ChipAgg> = (0..n).map(|_| ChipAgg::default()).collect();
        let mut chip_events: Vec<Vec<Event>> = vec![Vec::new(); n];
        let out = self.sweep_stage(
            instances,
            &base_routes,
            &segs,
            0,
            costs,
            false,
            true,
            &mut aggs,
            &mut chip_events,
        );
        debug_assert!(out.displaced.is_empty(), "in-stage retry never displaces");

        let mut attributions = Vec::with_capacity(out.completions.len());
        let (mut ttft, mut e2e) = (Vec::new(), Vec::new());
        for (inst, done, base) in out.completions {
            let attr = finish_attribution(&inst, done, base);
            if let Some(t) = attr.ttft_s {
                ttft.push(t);
            }
            e2e.push(attr.e2e_s);
            attributions.push(attr);
        }
        let buffer = self.template.arch().global_buffer_bytes;
        let replicas: Vec<ServeReport> = aggs.iter().map(|a| a.report(buffer)).collect();
        let tpot: Vec<f64> = aggs.iter().flat_map(|a| a.tpot.iter().copied()).collect();
        let completed = attributions.len();
        let output_tokens = aggs.iter().map(|a| a.output_tokens).sum();
        let merged =
            merge_reports(&replicas, self.spec.chips(), completed, output_tokens, ttft, tpot, e2e);

        let routes: Vec<usize> = out
            .initial_chips
            .iter()
            .zip(&base_routes)
            .map(|(c, &base)| c.unwrap_or(base))
            .collect();
        let mut shed_ids = out.shed;
        shed_ids.sort_unstable();
        let replica_events = self.name_chip_events(chip_events, |k| format!("replica {k}"));
        FleetReport {
            merged,
            replicas,
            routes,
            kv_transfer_bytes: 0,
            kv_transfer_s: 0.0,
            replica_events,
            attributions,
            faults: FaultStats::of(completed, out.retries, shed_ids.len()),
            shed_ids,
        }
    }

    /// The failure-aware disaggregated path. Each round sweeps the
    /// prefill chips (with in-stage retry — a prefill-chip death never
    /// disturbs the decode chips, which simply drain), hands completed
    /// prompts' K/V caches to health-aware decode chips, and sweeps the
    /// decode chips *without* in-stage retry: a decode-chip death loses
    /// the K/V cache, so the displaced requests re-enter the next round
    /// at the prefill stage — the honest re-prefill charge.
    fn run_disaggregated_faulted(
        &self,
        trace: &Trace,
        costs: &ServiceTimeTable,
        p: usize,
        d: usize,
    ) -> FleetReport {
        let segs = self.faults.segments(p + d);
        let (pre_segs, dec_segs) = segs.split_at(p);
        self.narrate_faults(p + d);

        let arch = self.template.arch();
        let kv_per_token = self.template.workload().kv_bytes_per_token(arch.word_bytes);
        let dram_bw = arch.dram_bw_bytes_per_sec;
        let orig_of: HashMap<usize, Request> = trace.requests.iter().map(|r| (r.id, *r)).collect();

        let mut aggs: Vec<ChipAgg> = (0..p + d).map(|_| ChipAgg::default()).collect();
        let mut chip_events: Vec<Vec<Event>> = vec![Vec::new(); p + d];
        let mut attributions: Vec<LatencyAttribution> = Vec::with_capacity(trace.len());
        let mut routes = self.stage1_routes(trace, Some(costs));
        let mut shed_ids: Vec<usize> = Vec::new();
        let mut retries = 0usize;
        let mut output_tokens = 0usize;
        let (mut kv_transfer_bytes, mut kv_transfer_s) = (0u64, 0.0f64);
        let mut dec_assigned = vec![0usize; d];

        // Round 0 serves the whole trace; later rounds re-prefill the
        // requests a decode-chip death displaced. Attempts are bounded by
        // the retry budget, so the loop terminates.
        let mut pending: Vec<PendInst> = trace
            .requests
            .iter()
            .map(|r| PendInst {
                req: Request { output_tokens: 1, ..*r },
                orig_arrival_s: r.arrival_s,
                attempt: 0,
            })
            .collect();
        let mut round = 0usize;
        while !pending.is_empty() {
            pending.sort_by(|a, b| {
                a.req.arrival_s.total_cmp(&b.req.arrival_s).then(a.req.id.cmp(&b.req.id))
            });
            let tmp = Trace { requests: pending.iter().map(|i| i.req).collect() };
            let base = self.stage1_routes(&tmp, Some(costs));
            let out = self.sweep_stage(
                std::mem::take(&mut pending),
                &base,
                pre_segs,
                0,
                costs,
                false,
                true,
                &mut aggs[..p],
                &mut chip_events[..p],
            );
            if round == 0 {
                for ((c, &b), route) in out.initial_chips.iter().zip(&base).zip(&mut routes) {
                    *route = c.unwrap_or(b);
                }
            }
            shed_ids.extend(out.shed);
            retries += out.retries;

            // Handoffs: completed prompts with more tokens to decode move
            // their full-model K/V cache to a health-aware decode chip at
            // DRAM bandwidth, scaled by the destination's brownout.
            let mut dec_insts: Vec<PendInst> = Vec::new();
            let mut dec_chip_of: HashMap<usize, usize> = HashMap::new();
            let mut kv_seconds_of: HashMap<usize, f64> = HashMap::new();
            let mut pre_attr_of: HashMap<usize, LatencyAttribution> = HashMap::new();
            for (inst, done, attr) in out.completions {
                let orig = orig_of[&inst.req.id];
                if orig.output_tokens <= 1 {
                    output_tokens += orig.output_tokens;
                    attributions.push(finish_attribution(&inst, done, attr));
                    continue;
                }
                let Some((k, _, _)) = place_balanced(dec_segs, &dec_assigned, done) else {
                    // No decode chip is ever up again: the prompt's output
                    // can never be generated.
                    let req = orig.id as u64;
                    self.recorder.emit(|| Event::serve(done, ServeEvent::Shed { req }));
                    shed_ids.push(orig.id);
                    continue;
                };
                dec_assigned[k] += 1;
                let bytes = kv_per_token * orig.prompt_tokens as u64;
                let (_, _, dram_mult) = covering_multipliers(&dec_segs[k], done);
                let seconds = bytes as f64 / dram_bw * dram_mult;
                kv_transfer_bytes += bytes;
                kv_transfer_s += seconds;
                kv_seconds_of.insert(orig.id, seconds);
                pre_attr_of.insert(orig.id, attr);
                dec_chip_of.insert(orig.id, k);
                let req = orig.id as u64;
                self.recorder
                    .emit(|| Event::serve(done, ServeEvent::KvTransfer { req, bytes, seconds }));
                dec_insts.push(PendInst {
                    req: Request { arrival_s: done + seconds, ..orig },
                    orig_arrival_s: inst.orig_arrival_s,
                    attempt: inst.attempt,
                });
            }
            dec_insts.sort_by(|a, b| {
                a.req.arrival_s.total_cmp(&b.req.arrival_s).then(a.req.id.cmp(&b.req.id))
            });
            let dec_base: Vec<usize> = dec_insts.iter().map(|i| dec_chip_of[&i.req.id]).collect();

            // Stage 2: decode on the surviving decode chips — no in-stage
            // retry, because a decode-chip death loses the K/V cache and
            // the displaced requests must re-prefill next round.
            let dec_out = self.sweep_stage(
                dec_insts,
                &dec_base,
                dec_segs,
                p,
                costs,
                true,
                false,
                &mut aggs[p..],
                &mut chip_events[p..],
            );
            shed_ids.extend(dec_out.shed);
            retries += dec_out.retries;
            for (inst, done, _) in dec_out.completions {
                let id = inst.req.id;
                let orig = orig_of[&id];
                let pre = &pre_attr_of[&id];
                let composed = LatencyAttribution::with_kv_handoff(
                    pre,
                    kv_seconds_of[&id],
                    done - pre.arrival_s,
                );
                output_tokens += orig.output_tokens;
                attributions.push(finish_attribution(&inst, done, composed));
            }
            pending = dec_out
                .displaced
                .into_iter()
                .map(|i| PendInst { req: Request { output_tokens: 1, ..i.req }, ..i })
                .collect();
            round += 1;
        }

        let buffer = self.template.arch().global_buffer_bytes;
        let replicas: Vec<ServeReport> = aggs.iter().map(|a| a.report(buffer)).collect();
        let (mut ttft, mut e2e) = (Vec::new(), Vec::new());
        for a in &attributions {
            if let Some(t) = a.ttft_s {
                ttft.push(t);
            }
            e2e.push(a.e2e_s);
        }
        let tpot: Vec<f64> = aggs.iter().flat_map(|a| a.tpot.iter().copied()).collect();
        let completed = attributions.len();
        let merged =
            merge_reports(&replicas, self.spec.chips(), completed, output_tokens, ttft, tpot, e2e);
        shed_ids.sort_unstable();
        let replica_events = self.name_chip_events(chip_events, |k| {
            if k < p {
                format!("prefill {k}")
            } else {
                format!("decode {}", k - p)
            }
        });
        FleetReport {
            merged,
            replicas,
            routes,
            kv_transfer_bytes,
            kv_transfer_s,
            replica_events,
            attributions,
            faults: FaultStats::of(completed, retries, shed_ids.len()),
            shed_ids,
        }
    }

    /// Serves one stage's instances across `segs.len()` chips that may
    /// fail and recover. Each instance is placed at its arrival into an
    /// up-time window (its base route if alive, the next alive chip
    /// otherwise, the earliest future window failing that, shed failing
    /// *that*); windows run in order of their failure time so requests a
    /// death displaces can re-enter a later window. With `retry_in_stage`
    /// the displaced are re-routed here (replicated fleets, prefill
    /// chips); without it they bubble out in
    /// [`StageOutcome::displaced`] with their attempt already bumped and
    /// their arrival set to the backed-off re-admission time (decode
    /// chips, whose losses must re-prefill).
    #[allow(clippy::too_many_arguments)]
    fn sweep_stage(
        &self,
        instances: Vec<PendInst>,
        base_routes: &[usize],
        segs: &[Vec<Segment>],
        chip_offset: usize,
        costs: &ServiceTimeTable,
        start_prefilled: bool,
        retry_in_stage: bool,
        aggs: &mut [ChipAgg],
        chip_events: &mut [Vec<Event>],
    ) -> StageOutcome {
        let n = segs.len();
        let mut buckets: Vec<Vec<Vec<PendInst>>> =
            segs.iter().map(|chip| vec![Vec::new(); chip.len()]).collect();
        let mut assigned = vec![0usize; n];
        let mut out = StageOutcome::default();

        for (i, inst) in instances.into_iter().enumerate() {
            let t = inst.req.arrival_s;
            match place_from(segs, base_routes[i], t) {
                Some((k, s, at)) => {
                    let (req, replica) = (inst.req.id as u64, chip_offset + k);
                    self.recorder.emit(|| Event::serve(t, ServeEvent::Route { req, replica }));
                    assigned[k] += 1;
                    out.initial_chips.push(Some(k));
                    buckets[k][s]
                        .push(PendInst { req: Request { arrival_s: at, ..inst.req }, ..inst });
                }
                None => {
                    let req = inst.req.id as u64;
                    self.recorder.emit(|| Event::serve(t, ServeEvent::Shed { req }));
                    out.shed.push(inst.req.id);
                    out.initial_chips.push(None);
                }
            }
        }

        // Windows in order of their failure instant (ties to the lower
        // chip), so a window's losses only ever target later windows.
        let mut order: Vec<(usize, usize)> =
            (0..n).flat_map(|k| (0..segs[k].len()).map(move |s| (k, s))).collect();
        order.sort_by(|&(ka, sa), &(kb, sb)| {
            segs[ka][sa].end_s.total_cmp(&segs[kb][sb].end_s).then(ka.cmp(&kb)).then(sa.cmp(&sb))
        });
        for (k, s) in order {
            let mut bucket = std::mem::take(&mut buckets[k][s]);
            if bucket.is_empty() {
                continue;
            }
            bucket.sort_by(|a, b| {
                a.req.arrival_s.total_cmp(&b.req.arrival_s).then(a.req.id.cmp(&b.req.id))
            });
            let sub = Trace { requests: bucket.iter().map(|i| i.req).collect() };
            let rf = segs[k][s].replica_faults();
            let (recorder, sink) = if self.recorder.is_enabled() {
                let (recorder, sink) = VecSink::recorder();
                (recorder, Some(sink))
            } else {
                (Recorder::disabled(), None)
            };
            let sim = self.template.fleet_replica(recorder, start_prefilled);
            let run = sim.run_sampled_faulted(costs, &sub, &rf);
            if let Some(sink) = sink {
                chip_events[k].extend(sink.events());
            }
            aggs[k].absorb(&run.report, &run.samples);
            let mut by_id: HashMap<usize, PendInst> =
                bucket.into_iter().map(|i| (i.req.id, i)).collect();
            for (&(id, done), attr) in run.samples.completions.iter().zip(&run.samples.attributions)
            {
                let inst = by_id.remove(&id).expect("completion for an instance of this bucket");
                debug_assert_eq!(attr.req, id);
                out.completions.push((inst, done, attr.clone()));
            }
            if run.lost_active.is_empty() && run.lost_waiting.is_empty() {
                continue;
            }

            // The window's failure displaced work. In-flight requests lost
            // their K/V; waiting ones may be shed under the watermark when
            // surviving capacity falls too low.
            let dead_at = segs[k][s].end_s;
            let survivors =
                segs.iter().filter(|chip| chip.iter().any(|seg| seg.covers(dead_at))).count();
            let shed_waiting = match self.faults.shed_watermark {
                Some(w) => (survivors as f64) < w * n as f64,
                None => false,
            };
            let mut lost_active = run.lost_active;
            lost_active.sort_unstable();
            let mut lost_waiting = run.lost_waiting;
            lost_waiting.sort_unstable();
            let losses = lost_active
                .into_iter()
                .map(|id| (id, false))
                .chain(lost_waiting.into_iter().map(|id| (id, true)));
            for (id, waiting) in losses {
                let inst = by_id.remove(&id).expect("loss for an instance of this bucket");
                let req = id as u64;
                if waiting && shed_waiting {
                    self.recorder.emit(|| Event::serve(dead_at, ServeEvent::Shed { req }));
                    out.shed.push(id);
                    continue;
                }
                let attempt = inst.attempt + 1;
                if attempt > self.faults.retry.budget {
                    self.recorder.emit(|| Event::serve(dead_at, ServeEvent::Shed { req }));
                    out.shed.push(id);
                    continue;
                }
                let delay_s = self.faults.retry.delay_s(attempt);
                let eff = dead_at + delay_s;
                if retry_in_stage {
                    // Only count (and narrate) a retry that actually lands
                    // somewhere; a fleet with no future capacity sheds.
                    match place_balanced(segs, &assigned, eff) {
                        Some((k2, s2, at)) => {
                            out.retries += 1;
                            self.recorder.emit(|| {
                                Event::serve(dead_at, ServeEvent::Retry { req, attempt, delay_s })
                            });
                            let replica = chip_offset + k2;
                            self.recorder
                                .emit(|| Event::serve(eff, ServeEvent::Route { req, replica }));
                            assigned[k2] += 1;
                            buckets[k2][s2].push(PendInst {
                                req: Request { arrival_s: at, ..inst.req },
                                orig_arrival_s: inst.orig_arrival_s,
                                attempt,
                            });
                        }
                        None => {
                            self.recorder.emit(|| Event::serve(dead_at, ServeEvent::Shed { req }));
                            out.shed.push(id);
                        }
                    }
                } else {
                    out.retries += 1;
                    self.recorder.emit(|| {
                        Event::serve(dead_at, ServeEvent::Retry { req, attempt, delay_s })
                    });
                    out.displaced.push(PendInst {
                        req: Request { arrival_s: eff, ..inst.req },
                        orig_arrival_s: inst.orig_arrival_s,
                        attempt,
                    });
                }
            }
        }
        out
    }

    /// Labels the per-chip event streams for [`FleetReport::replica_events`]
    /// — one `(name, events)` entry per chip when traced (even for chips
    /// that stayed idle), none otherwise, matching the legacy contract.
    fn name_chip_events(
        &self,
        chip_events: Vec<Vec<Event>>,
        name: impl Fn(usize) -> String,
    ) -> Vec<(String, Vec<Event>)> {
        if !self.recorder.is_enabled() {
            return Vec::new();
        }
        chip_events.into_iter().enumerate().map(|(k, events)| (name(k), events)).collect()
    }
}

/// One not-yet-completed request instance flowing through the faulted
/// fleet: the request as the next engine run will see it (its arrival is
/// the effective re-admission time after any backoff), the original
/// trace arrival, and how many retry attempts it has consumed.
#[derive(Debug, Clone, Copy)]
struct PendInst {
    req: Request,
    orig_arrival_s: f64,
    attempt: usize,
}

/// Accumulates one chip's reports and samples across the several engine
/// runs its up-time windows produce, then renders a single
/// [`ServeReport`] with the same derived-metric formulas as the engine.
#[derive(Debug, Clone, Default)]
struct ChipAgg {
    completed: usize,
    output_tokens: usize,
    iterations: usize,
    busy_s: f64,
    makespan_s: f64,
    peak_resident_bytes: u64,
    peak_batch: usize,
    ttft: Vec<f64>,
    tpot: Vec<f64>,
    e2e: Vec<f64>,
}

impl ChipAgg {
    fn absorb(&mut self, report: &ServeReport, samples: &RunSamples) {
        self.completed += report.completed;
        self.output_tokens += report.output_tokens;
        self.iterations += report.iterations;
        self.busy_s += report.busy_s;
        self.makespan_s = self.makespan_s.max(report.makespan_s);
        self.peak_resident_bytes = self.peak_resident_bytes.max(report.peak_resident_bytes);
        self.peak_batch = self.peak_batch.max(report.peak_batch);
        self.ttft.extend_from_slice(&samples.ttft);
        self.tpot.extend_from_slice(&samples.tpot);
        self.e2e.extend_from_slice(&samples.e2e);
    }

    fn report(&self, buffer_bytes: u64) -> ServeReport {
        let makespan = self.makespan_s;
        ServeReport {
            completed: self.completed,
            output_tokens: self.output_tokens,
            iterations: self.iterations,
            makespan_s: makespan,
            busy_s: self.busy_s,
            goodput_rps: if makespan > 0.0 { self.completed as f64 / makespan } else { 0.0 },
            token_throughput_per_s: if makespan > 0.0 {
                self.output_tokens as f64 / makespan
            } else {
                0.0
            },
            utilization: if makespan > 0.0 { self.busy_s / makespan } else { 0.0 },
            peak_resident_bytes: self.peak_resident_bytes,
            peak_batch: self.peak_batch,
            buffer_bytes,
            ttft: LatencyStats::of(&mut self.ttft.clone()),
            tpot: LatencyStats::of(&mut self.tpot.clone()),
            e2e: LatencyStats::of(&mut self.e2e.clone()),
        }
    }
}

/// What one [`Fleet::sweep_stage`] pass produced.
#[derive(Debug, Default)]
struct StageOutcome {
    /// `(instance, completion time, engine attribution)` per completed
    /// request, in deterministic window-processing order.
    completions: Vec<(PendInst, f64, LatencyAttribution)>,
    /// Instances displaced by a failure when `retry_in_stage` is off:
    /// attempt already bumped, arrival set to the re-admission time.
    displaced: Vec<PendInst>,
    /// Request ids shed in this stage.
    shed: Vec<usize>,
    /// The chip each *input* instance was initially placed on (`None` =
    /// shed at routing time), parallel to the input order.
    initial_chips: Vec<Option<usize>>,
    /// Retry attempts dispatched.
    retries: usize,
}

/// The attribution a completed instance finally reports: the engine's
/// own attribution when the request never waited on a failure, otherwise
/// re-timed against the original arrival with the backoff and lost work
/// in the named `retry` bucket.
fn finish_attribution(inst: &PendInst, done: f64, base: LatencyAttribution) -> LatencyAttribution {
    if inst.attempt > 0 || base.arrival_s > inst.orig_arrival_s {
        LatencyAttribution::with_retry(
            &base,
            base.arrival_s - inst.orig_arrival_s,
            inst.orig_arrival_s,
            done - inst.orig_arrival_s,
        )
    } else {
        base
    }
}

/// The first chip at or after `base` (cyclically) with an up-time window
/// covering `t`; failing that, the earliest future window with the
/// arrival clamped to its start; `None` when no chip is ever up again.
fn place_from(segs: &[Vec<Segment>], base: usize, t: f64) -> Option<(usize, usize, f64)> {
    let n = segs.len();
    for j in 0..n {
        let k = (base + j) % n;
        if let Some(s) = segs[k].iter().position(|seg| seg.covers(t)) {
            return Some((k, s, t));
        }
    }
    future_window(segs, t)
}

/// The covering chip with the fewest placements so far (ties to the
/// lowest index); failing that, the earliest future window.
fn place_balanced(
    segs: &[Vec<Segment>],
    assigned: &[usize],
    t: f64,
) -> Option<(usize, usize, f64)> {
    let mut best: Option<(usize, usize)> = None;
    for (k, chip) in segs.iter().enumerate() {
        if let Some(s) = chip.iter().position(|seg| seg.covers(t)) {
            let better = match best {
                Some((bk, _)) => (assigned[k], k) < (assigned[bk], bk),
                None => true,
            };
            if better {
                best = Some((k, s));
            }
        }
    }
    match best {
        Some((k, s)) => Some((k, s, t)),
        None => future_window(segs, t),
    }
}

/// The earliest up-time window opening strictly after `t` (ties to the
/// lowest chip), with the placement time clamped to the window start.
fn future_window(segs: &[Vec<Segment>], t: f64) -> Option<(usize, usize, f64)> {
    let mut best: Option<(f64, usize, usize)> = None;
    for (k, chip) in segs.iter().enumerate() {
        for (s, seg) in chip.iter().enumerate() {
            if seg.start_s > t {
                let better = match best {
                    Some((bt, bk, _)) => (seg.start_s, k) < (bt, bk),
                    None => true,
                };
                if better {
                    best = Some((seg.start_s, k, s));
                }
                break; // windows are time-ordered per chip
            }
        }
    }
    best.map(|(start, k, s)| (k, s, start))
}

/// The `(step_time, compute, dram)` multipliers of the window covering
/// `t` (healthy `1.0`s when no window covers it — e.g. a K/V transfer
/// aimed at a window that opens later).
fn covering_multipliers(chip: &[Segment], t: f64) -> (f64, f64, f64) {
    chip.iter().find(|seg| seg.covers(t)).map_or((t, 1.0, 1.0), |seg| seg.multipliers_at(t))
}

/// Deterministic assignment of `reqs` (arrival order) to `n` chips.
/// `est` supplies the service-seconds estimate least-loaded routing
/// accumulates; the other policies never call it.
fn route_requests(
    policy: RouterPolicy,
    reqs: &[Request],
    n: usize,
    est: &dyn Fn(&Request) -> f64,
) -> Vec<usize> {
    if n <= 1 {
        return vec![0; reqs.len()];
    }
    match policy {
        RouterPolicy::RoundRobin => (0..reqs.len()).map(|i| i % n).collect(),
        RouterPolicy::LeastLoaded => {
            let mut load = vec![0.0f64; n];
            reqs.iter()
                .map(|r| {
                    let k = (0..n)
                        .min_by(|&a, &b| load[a].total_cmp(&load[b]).then(a.cmp(&b)))
                        .expect("n >= 1");
                    load[k] += est(r);
                    k
                })
                .collect()
        }
        RouterPolicy::ShortestPrompt => {
            // Length-class affinity: rank by prompt length (ties by
            // position) and split the ranking into n contiguous classes.
            let mut order: Vec<usize> = (0..reqs.len()).collect();
            order.sort_by_key(|&i| (reqs[i].prompt_tokens, i));
            let per = reqs.len().div_ceil(n);
            let mut routes = vec![0usize; reqs.len()];
            for (rank, &i) in order.iter().enumerate() {
                routes[i] = (rank / per.max(1)).min(n - 1);
            }
            routes
        }
    }
}

/// The fleet-level report: work sums, the fleet makespan (max over
/// chips), utilization normalized by chip count, and exact quantiles
/// over the concatenated raw samples. With one chip this reproduces the
/// plain simulator's report bit-for-bit.
fn merge_reports(
    replicas: &[ServeReport],
    chips: usize,
    completed: usize,
    output_tokens: usize,
    mut ttft: Vec<f64>,
    mut tpot: Vec<f64>,
    mut e2e: Vec<f64>,
) -> ServeReport {
    let iterations: usize = replicas.iter().map(|r| r.iterations).sum();
    let busy: f64 = replicas.iter().map(|r| r.busy_s).sum();
    let makespan = replicas.iter().map(|r| r.makespan_s).fold(0.0f64, f64::max);
    ServeReport {
        completed,
        output_tokens,
        iterations,
        makespan_s: makespan,
        busy_s: busy,
        goodput_rps: if makespan > 0.0 { completed as f64 / makespan } else { 0.0 },
        token_throughput_per_s: if makespan > 0.0 { output_tokens as f64 / makespan } else { 0.0 },
        utilization: if makespan > 0.0 { busy / (chips as f64 * makespan) } else { 0.0 },
        peak_resident_bytes: replicas.iter().map(|r| r.peak_resident_bytes).max().unwrap_or(0),
        peak_batch: replicas.iter().map(|r| r.peak_batch).max().unwrap_or(0),
        buffer_bytes: replicas.first().map_or(0, |r| r.buffer_bytes),
        ttft: LatencyStats::of(&mut ttft),
        tpot: LatencyStats::of(&mut tpot),
        e2e: LatencyStats::of(&mut e2e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::RetryPolicy;
    use crate::traffic::{Arrivals, LengthMix, TrafficSpec};
    use fusemax_model::ConfigKind;
    use fusemax_workloads::TransformerConfig;

    fn replica() -> ServeSim {
        let kind = ConfigKind::FuseMaxBinding;
        ServeSim::builder(
            kind,
            kind.default_arch(),
            TransformerConfig::bert(),
            ModelParams::default(),
        )
        .build()
    }

    fn mixed_trace(rate: f64, requests: usize) -> Trace {
        TrafficSpec {
            arrivals: Arrivals::Poisson { rate_per_s: rate },
            prompt_mix: LengthMix::new([(512, 3.0), (4096, 1.0)]),
            output_mix: LengthMix::uniform([4, 16]),
            requests,
        }
        .generate(23)
    }

    #[test]
    fn a_single_replica_fleet_is_bit_identical_to_the_plain_sim() {
        let trace = mixed_trace(200.0, 50);
        let plain = replica().run(&trace);
        for router in [RouterPolicy::RoundRobin, RouterPolicy::LeastLoaded] {
            let fleet = Fleet::new(FleetSpec::single().with_router(router), replica());
            assert_eq!(fleet.run(&trace), plain, "router {router:?}");
        }
    }

    #[test]
    fn every_router_routes_every_request_exactly_once() {
        let trace = mixed_trace(400.0, 60);
        for router in
            [RouterPolicy::RoundRobin, RouterPolicy::LeastLoaded, RouterPolicy::ShortestPrompt]
        {
            let fleet = Fleet::new(FleetSpec::replicated(4).with_router(router), replica());
            let routes = fleet.route(&trace);
            assert_eq!(routes.len(), trace.len());
            assert!(routes.iter().all(|&k| k < 4), "replica index out of range");
            let counts = routes.iter().fold(vec![0usize; 4], |mut c, &k| {
                c[k] += 1;
                c
            });
            assert_eq!(counts.iter().sum::<usize>(), trace.len());
            assert_eq!(routes, fleet.route(&trace), "routing must be deterministic");
        }
    }

    #[test]
    fn round_robin_cycles_and_shortest_prompt_groups_by_length() {
        let trace = mixed_trace(400.0, 40);
        let rr = Fleet::new(FleetSpec::replicated(3), replica()).route(&trace);
        assert!(rr.iter().enumerate().all(|(i, &k)| k == i % 3));

        let sp = Fleet::new(
            FleetSpec::replicated(2).with_router(RouterPolicy::ShortestPrompt),
            replica(),
        )
        .route(&trace);
        // All short prompts land strictly before long ones in rank order:
        // no long prompt maps to a lower class than any short prompt.
        let max_short = trace
            .requests
            .iter()
            .zip(&sp)
            .filter(|(r, _)| r.prompt_tokens == 512)
            .map(|(_, &k)| k)
            .max()
            .unwrap();
        let min_long = trace
            .requests
            .iter()
            .zip(&sp)
            .filter(|(r, _)| r.prompt_tokens == 4096)
            .map(|(_, &k)| k)
            .min()
            .unwrap();
        assert!(max_short <= min_long, "length classes must be contiguous");
    }

    #[test]
    fn merged_quantiles_are_exact_over_the_union_of_samples() {
        let trace = mixed_trace(500.0, 60);
        let fleet = Fleet::new(FleetSpec::replicated(3), replica());
        let detailed = fleet.run_detailed(&trace);

        // Recompute from scratch: shard the trace by the public route,
        // run each shard on a plain sim, concatenate raw samples.
        let routes = fleet.route(&trace);
        let costs = replica().service_times(&trace);
        let (mut ttft, mut e2e) = (Vec::new(), Vec::new());
        let mut completed = 0;
        for k in 0..3 {
            let sub = Trace {
                requests: trace
                    .requests
                    .iter()
                    .zip(&routes)
                    .filter(|(_, &r)| r == k)
                    .map(|(q, _)| *q)
                    .collect(),
            };
            let (report, samples) = replica().run_sampled_with(&costs, &sub);
            completed += report.completed;
            ttft.extend(samples.ttft);
            e2e.extend(samples.e2e);
        }
        assert_eq!(completed, detailed.merged.completed);
        assert_eq!(LatencyStats::of(&mut ttft), detailed.merged.ttft);
        assert_eq!(LatencyStats::of(&mut e2e), detailed.merged.e2e);
    }

    #[test]
    fn fleet_replays_are_bit_identical_and_tracing_changes_nothing() {
        let trace = mixed_trace(300.0, 50);
        for spec in [
            FleetSpec::replicated(4).with_router(RouterPolicy::LeastLoaded),
            FleetSpec::disaggregated(1, 3),
        ] {
            let fleet = Fleet::new(spec, replica());
            let a = fleet.run_detailed(&trace);
            let b = fleet.run_detailed(&trace);
            assert_eq!(a, b, "{spec}");
            let (recorder, sink) = VecSink::recorder();
            let traced = Fleet::new(spec, replica()).with_recorder(recorder);
            let t = traced.run_detailed(&trace);
            assert_eq!(t.merged, a.merged, "tracing must not change the report ({spec})");
            assert_eq!(t.replica_events.len(), spec.chips());
            assert!(
                sink.events()
                    .iter()
                    .any(|e| matches!(e, Event::Serve { kind: ServeEvent::Route { .. }, .. })),
                "router must emit Route events"
            );
        }
    }

    #[test]
    fn disaggregation_completes_everything_and_charges_the_kv_wire() {
        let trace = mixed_trace(300.0, 50);
        let fleet = Fleet::new(FleetSpec::disaggregated(2, 2), replica());
        let detailed = fleet.run_detailed(&trace);
        assert_eq!(detailed.merged.completed, 50);
        assert_eq!(detailed.replicas.len(), 4);
        assert_eq!(detailed.merged.ttft.samples, 50, "every prompt prefills on stage 1");
        assert!(detailed.kv_transfer_bytes > 0);
        assert!(detailed.kv_transfer_s > 0.0);
        // The wire time really is bytes over DRAM bandwidth.
        let bw = replica().arch().dram_bw_bytes_per_sec;
        let expected: f64 = detailed.kv_transfer_bytes as f64 / bw;
        assert!((detailed.kv_transfer_s - expected).abs() < 1e-9 * expected.max(1.0));
        // End-to-end latency includes both stages plus the wire, so the
        // fleet e2e mean can never beat the prefill-only stage's.
        assert!(detailed.merged.e2e.mean >= detailed.merged.ttft.mean);
    }

    #[test]
    fn an_empty_fault_spec_reproduces_the_legacy_run_byte_for_byte() {
        let trace = mixed_trace(300.0, 50);
        for spec in [FleetSpec::replicated(3), FleetSpec::disaggregated(1, 2)] {
            let legacy = Fleet::new(spec, replica()).run_detailed(&trace);
            let nofault =
                Fleet::new(spec, replica()).with_faults(FaultSpec::none()).run_detailed(&trace);
            assert_eq!(legacy, nofault, "{spec}");
            assert_eq!(nofault.faults, FaultStats::default());
            assert!(nofault.shed_ids.is_empty());
            // The traced event streams are byte-identical too.
            let stream = |fleet: Fleet| {
                let (recorder, sink) = VecSink::recorder();
                fleet.with_recorder(recorder).run_detailed(&trace);
                sink.events()
                    .iter()
                    .map(fusemax_telemetry::event_json)
                    .collect::<Vec<_>>()
                    .join("\n")
            };
            assert_eq!(
                stream(Fleet::new(spec, replica())),
                stream(Fleet::new(spec, replica()).with_faults(FaultSpec::none())),
                "{spec}"
            );
        }
    }

    #[test]
    fn a_replica_death_conserves_requests_and_narrates_retries() {
        let trace = mixed_trace(2000.0, 60);
        let spec = FleetSpec::replicated(2);
        let faults = FaultSpec::single_failure(trace.last_arrival_s() * 0.5, 1);
        let fleet = Fleet::new(spec, replica()).with_faults(faults.clone());
        let a = fleet.run_detailed(&trace);
        // Conservation: every trace id completes XOR is shed, exactly once.
        let mut ids: Vec<usize> = a.attributions.iter().map(|at| at.req).collect();
        ids.extend(&a.shed_ids);
        ids.sort_unstable();
        assert_eq!(ids, (0..60).collect::<Vec<_>>());
        assert_eq!(a.merged.completed + a.shed_ids.len(), 60);
        assert!(a.faults.retries > 0, "a mid-trace death must displace in-flight work");
        // Displaced survivors carry the named retry bucket, and every
        // attribution still folds bit-exactly.
        for at in &a.attributions {
            at.validate().unwrap();
        }
        assert!(a.attributions.iter().any(|at| at.retry_s > 0.0));
        // Bit-identical replay.
        assert_eq!(a, fleet.run_detailed(&trace));
        // Tracing narrates the fault and changes nothing.
        let (recorder, sink) = VecSink::recorder();
        let traced = Fleet::new(spec, replica()).with_faults(faults).with_recorder(recorder);
        let t = traced.run_detailed(&trace);
        assert_eq!(t.merged, a.merged);
        assert_eq!(t.replica_events.len(), spec.chips());
        let events = sink.events();
        assert!(events.iter().any(|e| matches!(
            e,
            Event::Serve { kind: ServeEvent::ReplicaDown { replica: 1 }, .. }
        )));
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::Serve { kind: ServeEvent::Retry { .. }, .. })));
    }

    #[test]
    fn disaggregated_prefill_and_decode_deaths_both_conserve() {
        let trace = mixed_trace(800.0, 40);
        let t_down = trace.last_arrival_s() * 0.5;
        // Chip 0 is a prefill chip, chip 2 the first decode chip of 2p+2d.
        for victim in [0usize, 2] {
            let fleet = Fleet::new(FleetSpec::disaggregated(2, 2), replica())
                .with_faults(FaultSpec::single_failure(t_down, victim));
            let a = fleet.run_detailed(&trace);
            let mut ids: Vec<usize> = a.attributions.iter().map(|at| at.req).collect();
            ids.extend(&a.shed_ids);
            ids.sort_unstable();
            assert_eq!(ids, (0..40).collect::<Vec<_>>(), "victim chip {victim}");
            for at in &a.attributions {
                at.validate().unwrap();
            }
            assert_eq!(a, fleet.run_detailed(&trace), "victim chip {victim}");
        }
    }

    #[test]
    fn the_watermark_sheds_waiting_work_and_a_zero_budget_sheds_everything_displaced() {
        let trace = mixed_trace(2000.0, 40);
        let t_down = trace.last_arrival_s() * 0.5;
        // Budget 0 + watermark 1.0: every displaced request is shed, none
        // retried.
        let faults = FaultSpec::single_failure(t_down, 1)
            .with_retry(RetryPolicy { budget: 0, ..RetryPolicy::default() })
            .with_shed_watermark(1.0);
        let fleet = Fleet::new(FleetSpec::replicated(2), replica()).with_faults(faults);
        let a = fleet.run_detailed(&trace);
        assert_eq!(a.faults.retries, 0);
        assert!(!a.shed_ids.is_empty(), "a heavy-load death with budget 0 must shed");
        assert!(a.faults.availability < 1.0);
        assert_eq!(a.merged.completed + a.shed_ids.len(), 40);
        // With a generous budget and no watermark, the same death sheds
        // nothing: everything displaced is retried onto the survivor.
        let retried = Fleet::new(FleetSpec::replicated(2), replica())
            .with_faults(FaultSpec::single_failure(t_down, 1))
            .run_detailed(&trace);
        assert!(retried.shed_ids.is_empty());
        assert_eq!(retried.merged.completed, 40);
        assert!(retried.faults.retries > 0);
        assert_eq!(retried.faults.availability, 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid fault spec")]
    fn invalid_fault_specs_panic_at_run_time() {
        let trace = mixed_trace(300.0, 10);
        Fleet::new(FleetSpec::replicated(2), replica())
            .with_faults(FaultSpec::single_failure(1e9, 0))
            .run(&trace);
    }

    #[test]
    fn recovery_heals_the_fleet_mid_trace() {
        let trace = mixed_trace(800.0, 60);
        let horizon = trace.last_arrival_s();
        let bounce = FaultSpec::none().down(horizon * 0.3, 1).up(horizon * 0.6, 1);
        let fleet = Fleet::new(FleetSpec::replicated(2), replica()).with_faults(bounce);
        let a = fleet.run_detailed(&trace);
        assert_eq!(a.merged.completed + a.shed_ids.len(), 60);
        // The healed chip serves again after recovery: its report shows
        // work, and requests arriving at/after the recovery instant can
        // route to it.
        assert!(a.replicas[1].completed > 0, "chip 1 must serve before death or after recovery");
        assert_eq!(a, fleet.run_detailed(&trace));
    }

    #[test]
    fn more_replicas_cut_tail_latency_under_heavy_load() {
        let trace = mixed_trace(800.0, 60);
        let one = Fleet::new(FleetSpec::single(), replica()).run(&trace);
        let four = Fleet::new(FleetSpec::replicated(4), replica()).run(&trace);
        assert!(
            four.ttft.p99 < one.ttft.p99,
            "4x fleet p99 TTFT {} must beat 1x {}",
            four.ttft.p99,
            one.ttft.p99
        );
        assert!(four.goodput_rps >= one.goodput_rps);
    }
}
