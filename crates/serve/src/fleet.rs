//! Fleet-scale serving: a deterministic router shards one [`Trace`]
//! across N replica chips of the same design, per-replica reports merge
//! into one fleet-level [`ServeReport`] with **exact** quantiles, and a
//! disaggregated topology dedicates prefill chips feeding decode chips
//! with the K/V handoff charged at DRAM bandwidth.
//!
//! # Routing
//!
//! All three [`RouterPolicy`]s are pure functions of the trace and the
//! design (no RNG), so a fleet replay is bit-identical by construction:
//!
//! * **Round-robin** — request `i` (in arrival order) goes to replica
//!   `i mod N`.
//! * **Least-loaded** — greedy assignment to the replica with the
//!   smallest accumulated *estimated* service seconds (from the shared
//!   [`ServiceTimeTable`]), ties to the lowest index.
//! * **Shortest-prompt** — length-class affinity: requests are ranked by
//!   prompt length and split into N contiguous classes, so short prompts
//!   share replicas instead of queueing behind long ones.
//!
//! # Merging
//!
//! Fleet quantiles are computed over the **union of raw per-request
//! samples** ([`crate::RunSamples`]), never by averaging per-replica
//! summaries — so the merged p99 is exactly the p99 of the whole trace.
//! A 1-replica fleet reproduces the plain [`ServeSim`] report
//! bit-for-bit (test-enforced).
//!
//! # Disaggregation
//!
//! Under [`FleetSpec::disaggregated`]`(p, d)`, the router shards
//! arrivals across the `p` prefill chips, which serve prompt-only work;
//! each finished prompt's K/V cache (the full-model
//! [`fusemax_workloads::TransformerConfig::kv_bytes_per_token`] ×
//! prompt tokens) then crosses to a decode chip in time
//! `bytes / dram_bw_bytes_per_sec`, and the `d` decode chips run the
//! engine in decode-only mode. TTFT comes from the prefill stage,
//! TPOT from the decode stage, and end-to-end latency spans both plus
//! the transfer wire time.

use crate::attribution::LatencyAttribution;
use crate::report::{LatencyStats, ServeReport};
use crate::sim::{RunSamples, ServeSim};
use crate::table::ServiceTimeTable;
use crate::traffic::{Request, Trace};
use fusemax_dse::{DesignPoint, FleetSpec, RouterPolicy};
use fusemax_model::ModelParams;
use fusemax_telemetry::{Event, Recorder, ServeEvent, VecSink};
use std::collections::HashMap;

/// A data-parallel (or prefill/decode-disaggregated) fleet of identical
/// replica chips serving one trace.
///
/// # Example
///
/// ```
/// use fusemax_model::{ConfigKind, ModelParams};
/// use fusemax_serve::{Arrivals, Fleet, FleetSpec, LengthMix, ServeSim, TrafficSpec};
/// use fusemax_workloads::TransformerConfig;
///
/// let trace = TrafficSpec {
///     arrivals: Arrivals::Poisson { rate_per_s: 120.0 },
///     prompt_mix: LengthMix::new([(512, 3.0), (4096, 1.0)]),
///     output_mix: LengthMix::uniform([8, 32]),
///     requests: 60,
/// }
/// .generate(7);
///
/// let replica = ServeSim::builder(
///     ConfigKind::FuseMaxBinding,
///     ConfigKind::FuseMaxBinding.default_arch(),
///     TransformerConfig::bert(),
///     ModelParams::default(),
/// )
/// .build();
/// let fleet = Fleet::new(FleetSpec::replicated(4), replica);
/// let report = fleet.run(&trace);
/// assert_eq!(report.completed, 60);
/// assert_eq!(report, fleet.run(&trace), "fleet replay is bit-identical");
/// ```
#[derive(Debug, Clone)]
pub struct Fleet {
    spec: FleetSpec,
    template: ServeSim,
    recorder: Recorder,
}

/// A fleet run's full breakdown: the merged fleet-level report plus
/// per-replica reports, the router's assignment, K/V-transfer totals,
/// and (when traced) each replica's event stream.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// The fleet-level report: summed throughput work, max makespan,
    /// utilization over all chips, exact quantiles over the union of
    /// per-request samples.
    pub merged: ServeReport,
    /// One report per chip — replicas in index order; for a
    /// disaggregated fleet, the `p` prefill chips then the `d` decode
    /// chips.
    pub replicas: Vec<ServeReport>,
    /// Stage-1 replica index per trace request (arrival order) — for a
    /// disaggregated fleet, the prefill-chip assignment.
    pub routes: Vec<usize>,
    /// Total K/V bytes moved between prefill and decode chips (0 for
    /// non-disaggregated fleets).
    pub kv_transfer_bytes: u64,
    /// Total wire seconds of K/V transfer at DRAM bandwidth (0 for
    /// non-disaggregated fleets).
    pub kv_transfer_s: f64,
    /// `(track name, events)` per chip when the fleet carries an enabled
    /// recorder (empty otherwise) — feed alongside the router stream to
    /// [`fusemax_telemetry::fleet_trace_json`].
    pub replica_events: Vec<(String, Vec<Event>)>,
    /// Per-request exact latency attributions over the whole fleet. For
    /// a disaggregated fleet each multi-token request's TTFT buckets come
    /// from its prefill chip, the K/V wire is charged explicitly, and the
    /// decode bucket absorbs the decode chip's own queue wait.
    pub attributions: Vec<LatencyAttribution>,
}

/// One chip's share of the fleet's work: the imbalance row of
/// [`FleetReport::imbalance`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaImbalance {
    /// Chip index (prefill chips before decode chips when disaggregated).
    pub replica: usize,
    /// Requests this chip completed.
    pub completed: usize,
    /// Busy seconds on this chip.
    pub busy_s: f64,
    /// This chip's fraction of the fleet's total busy seconds.
    pub busy_share: f64,
    /// This chip's own utilization (busy over its makespan).
    pub utilization: f64,
}

impl FleetReport {
    /// Attributes fleet imbalance per replica: each chip's completed
    /// requests, busy seconds, share of total busy time, and utilization
    /// — the forensic view behind a skewed router assignment.
    pub fn imbalance(&self) -> Vec<ReplicaImbalance> {
        let total_busy: f64 = self.replicas.iter().map(|r| r.busy_s).sum();
        self.replicas
            .iter()
            .enumerate()
            .map(|(replica, r)| ReplicaImbalance {
                replica,
                completed: r.completed,
                busy_s: r.busy_s,
                busy_share: if total_busy > 0.0 { r.busy_s / total_busy } else { 0.0 },
                utilization: r.utilization,
            })
            .collect()
    }

    /// Max-over-mean busy seconds across chips: `1.0` is a perfectly
    /// balanced fleet; `N` means one chip did all the work.
    pub fn imbalance_ratio(&self) -> f64 {
        if self.replicas.is_empty() {
            return 1.0;
        }
        let mean: f64 =
            self.replicas.iter().map(|r| r.busy_s).sum::<f64>() / self.replicas.len() as f64;
        if mean <= 0.0 {
            return 1.0;
        }
        self.replicas.iter().map(|r| r.busy_s).fold(0.0f64, f64::max) / mean
    }
}

impl Fleet {
    /// A fleet of `spec.chips()` copies of `replica` (its design,
    /// scheduler policy, and workload are shared by every chip).
    pub fn new(spec: FleetSpec, replica: ServeSim) -> Self {
        Fleet { spec, template: replica, recorder: Recorder::disabled() }
    }

    /// The fleet a DSE design point describes: the point's per-chip
    /// design under its fleet axis (`point.fleet`).
    pub fn for_point(point: &DesignPoint, params: &ModelParams) -> Self {
        Fleet::new(point.fleet, ServeSim::for_point(point, params))
    }

    /// Attaches a telemetry recorder. The fleet emits router events
    /// ([`ServeEvent::Route`], [`ServeEvent::KvTransfer`]) into it, and
    /// [`FleetReport::replica_events`] additionally captures each chip's
    /// own stream. Instrumentation never changes the report.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// The fleet shape.
    pub fn spec(&self) -> FleetSpec {
        self.spec
    }

    /// The stage-1 router assignment for `trace`: one replica index per
    /// request, in arrival order. Every request is routed exactly once
    /// — the conservation property the fleet proptests pin down. For a
    /// disaggregated fleet this is the prefill-chip assignment.
    pub fn route(&self, trace: &Trace) -> Vec<usize> {
        let costs = match self.spec.router {
            RouterPolicy::LeastLoaded => Some(self.template.service_times(trace)),
            _ => None,
        };
        self.stage1_routes(trace, costs.as_ref())
    }

    /// Serves `trace` on the fleet and returns the merged fleet-level
    /// report.
    pub fn run(&self, trace: &Trace) -> ServeReport {
        self.run_detailed(trace).merged
    }

    /// Serves `trace` and returns the full per-replica breakdown.
    pub fn run_detailed(&self, trace: &Trace) -> FleetReport {
        let costs = self.template.service_times(trace);
        match self.spec.prefill_decode {
            None => self.run_replicated(trace, &costs),
            Some((p, d)) => self.run_disaggregated(trace, &costs, p.max(1), d.max(1)),
        }
    }

    /// How many chips stage-1 routing spreads over.
    fn stage1_width(&self) -> usize {
        match self.spec.prefill_decode {
            Some((p, _)) => p.max(1),
            None => self.spec.replicas.max(1),
        }
    }

    fn stage1_routes(&self, trace: &Trace, costs: Option<&ServiceTimeTable>) -> Vec<usize> {
        let est = |r: &Request| -> f64 {
            let costs = costs.expect("least-loaded routing needs a service-time table");
            let decode = if r.output_tokens >= 2 {
                (r.output_tokens - 1) as f64 * costs.decode_seconds(r.prompt_tokens + 1)
            } else {
                0.0
            };
            costs.prefill_seconds(r.prompt_tokens) + decode
        };
        route_requests(self.spec.router, &trace.requests, self.stage1_width(), &est)
    }

    /// One replica chip's run over its sub-trace, optionally traced.
    fn run_replica(
        &self,
        name: String,
        sub: &Trace,
        costs: &ServiceTimeTable,
        start_prefilled: bool,
        replica_events: &mut Vec<(String, Vec<Event>)>,
    ) -> (ServeReport, RunSamples) {
        let (recorder, sink) = if self.recorder.is_enabled() {
            let (recorder, sink) = VecSink::recorder();
            (recorder, Some(sink))
        } else {
            (Recorder::disabled(), None)
        };
        let sim = self.template.fleet_replica(recorder, start_prefilled);
        let out = sim.run_sampled_with(costs, sub);
        if let Some(sink) = sink {
            replica_events.push((name, sink.events()));
        }
        out
    }

    fn run_replicated(&self, trace: &Trace, costs: &ServiceTimeTable) -> FleetReport {
        let n = self.spec.replicas.max(1);
        let routes = self.stage1_routes(trace, Some(costs));
        let mut subs: Vec<Trace> = vec![Trace::default(); n];
        for (i, r) in trace.requests.iter().enumerate() {
            let (at, req, replica) = (r.arrival_s, r.id as u64, routes[i]);
            self.recorder.emit(|| Event::serve(at, ServeEvent::Route { req, replica }));
            subs[replica].requests.push(*r);
        }

        let mut replicas = Vec::with_capacity(n);
        let mut replica_events = Vec::new();
        let (mut ttft, mut tpot, mut e2e) = (Vec::new(), Vec::new(), Vec::new());
        let mut attributions = Vec::with_capacity(trace.len());
        let (mut completed, mut output_tokens) = (0usize, 0usize);
        for (k, sub) in subs.iter().enumerate() {
            let (report, samples) =
                self.run_replica(format!("replica {k}"), sub, costs, false, &mut replica_events);
            completed += report.completed;
            output_tokens += report.output_tokens;
            replicas.push(report);
            ttft.extend_from_slice(&samples.ttft);
            tpot.extend_from_slice(&samples.tpot);
            e2e.extend_from_slice(&samples.e2e);
            attributions.extend(samples.attributions);
        }
        let merged =
            merge_reports(&replicas, self.spec.chips(), completed, output_tokens, ttft, tpot, e2e);
        FleetReport {
            merged,
            replicas,
            routes,
            kv_transfer_bytes: 0,
            kv_transfer_s: 0.0,
            replica_events,
            attributions,
        }
    }

    fn run_disaggregated(
        &self,
        trace: &Trace,
        costs: &ServiceTimeTable,
        p: usize,
        d: usize,
    ) -> FleetReport {
        let routes = self.stage1_routes(trace, Some(costs));

        // Stage 1: the prefill chips serve prompt-only versions of every
        // request (prefill produces the first token, so `output = 1`
        // completes exactly at prefill end).
        let mut prefill_subs: Vec<Trace> = vec![Trace::default(); p];
        for (i, r) in trace.requests.iter().enumerate() {
            let (at, req, replica) = (r.arrival_s, r.id as u64, routes[i]);
            self.recorder.emit(|| Event::serve(at, ServeEvent::Route { req, replica }));
            prefill_subs[replica].requests.push(Request { output_tokens: 1, ..*r });
        }

        let mut replicas = Vec::with_capacity(p + d);
        let mut replica_events = Vec::new();
        let mut ttft = Vec::with_capacity(trace.len());
        let mut done_at: HashMap<usize, f64> = HashMap::with_capacity(trace.len());
        let mut prefill_attr: HashMap<usize, LatencyAttribution> =
            HashMap::with_capacity(trace.len());
        for (k, sub) in prefill_subs.iter().enumerate() {
            let (report, samples) =
                self.run_replica(format!("prefill {k}"), sub, costs, false, &mut replica_events);
            replicas.push(report);
            ttft.extend_from_slice(&samples.ttft);
            done_at.extend(samples.completions.iter().copied());
            prefill_attr.extend(samples.attributions.into_iter().map(|a| (a.req, a)));
        }

        // Requests whose single output token was produced by prefill are
        // done; the rest hand their K/V cache to a decode chip, charged
        // at DRAM bandwidth. The full-model cache moves — every layer's
        // K/V for the prompt — not just the per-layer resident slice.
        let arch = self.template.arch();
        let kv_per_token = self.template.workload().kv_bytes_per_token(arch.word_bytes);
        let dram_bw = arch.dram_bw_bytes_per_sec;
        let mut e2e: Vec<f64> = Vec::with_capacity(trace.len());
        let mut attributions: Vec<LatencyAttribution> = Vec::with_capacity(trace.len());
        let (mut kv_transfer_bytes, mut kv_transfer_s) = (0u64, 0.0f64);
        let mut kv_seconds_of: HashMap<usize, f64> = HashMap::new();
        let mut decode_all: Vec<Request> = Vec::new();
        for r in &trace.requests {
            let prefill_done = done_at[&r.id];
            if r.output_tokens <= 1 {
                e2e.push(prefill_done - r.arrival_s);
                // Prefill produced the whole output: the prefill-stage
                // attribution is the request's attribution.
                if let Some(a) = prefill_attr.remove(&r.id) {
                    attributions.push(a);
                }
                continue;
            }
            let bytes = kv_per_token * r.prompt_tokens as u64;
            let seconds = bytes as f64 / dram_bw;
            kv_transfer_bytes += bytes;
            kv_transfer_s += seconds;
            kv_seconds_of.insert(r.id, seconds);
            let req = r.id as u64;
            self.recorder.emit(|| {
                Event::serve(prefill_done, ServeEvent::KvTransfer { req, bytes, seconds })
            });
            decode_all.push(Request { arrival_s: prefill_done + seconds, ..*r });
        }
        // The engine consumes arrivals in order; handoffs are not in
        // trace order, so sort (ties by id — deterministic).
        decode_all.sort_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s).then(a.id.cmp(&b.id)));

        // Stage 2: route the handoffs across the decode chips and run
        // them decode-only.
        let est = |r: &Request| -> f64 {
            (r.output_tokens - 1) as f64 * costs.decode_seconds(r.prompt_tokens + 1)
        };
        let decode_routes = route_requests(self.spec.router, &decode_all, d, &est);
        let mut decode_subs: Vec<Trace> = vec![Trace::default(); d];
        for (j, r) in decode_all.iter().enumerate() {
            let (at, req, replica) = (r.arrival_s, r.id as u64, p + decode_routes[j]);
            self.recorder.emit(|| Event::serve(at, ServeEvent::Route { req, replica }));
            decode_subs[decode_routes[j]].requests.push(*r);
        }
        let arrival_of: HashMap<usize, f64> =
            trace.requests.iter().map(|r| (r.id, r.arrival_s)).collect();
        let mut tpot = Vec::new();
        let mut output_tokens: usize =
            trace.requests.iter().filter(|r| r.output_tokens <= 1).map(|r| r.output_tokens).sum();
        for (k, sub) in decode_subs.iter().enumerate() {
            let (report, samples) =
                self.run_replica(format!("decode {k}"), sub, costs, true, &mut replica_events);
            output_tokens += report.output_tokens;
            replicas.push(report);
            tpot.extend_from_slice(&samples.tpot);
            for &(id, done) in &samples.completions {
                let e2e_s = done - arrival_of[&id];
                e2e.push(e2e_s);
                attributions.push(LatencyAttribution::with_kv_handoff(
                    &prefill_attr[&id],
                    kv_seconds_of[&id],
                    e2e_s,
                ));
            }
        }

        let completed = e2e.len();
        let merged =
            merge_reports(&replicas, self.spec.chips(), completed, output_tokens, ttft, tpot, e2e);
        FleetReport {
            merged,
            replicas,
            routes,
            kv_transfer_bytes,
            kv_transfer_s,
            replica_events,
            attributions,
        }
    }
}

/// Deterministic assignment of `reqs` (arrival order) to `n` chips.
/// `est` supplies the service-seconds estimate least-loaded routing
/// accumulates; the other policies never call it.
fn route_requests(
    policy: RouterPolicy,
    reqs: &[Request],
    n: usize,
    est: &dyn Fn(&Request) -> f64,
) -> Vec<usize> {
    if n <= 1 {
        return vec![0; reqs.len()];
    }
    match policy {
        RouterPolicy::RoundRobin => (0..reqs.len()).map(|i| i % n).collect(),
        RouterPolicy::LeastLoaded => {
            let mut load = vec![0.0f64; n];
            reqs.iter()
                .map(|r| {
                    let k = (0..n)
                        .min_by(|&a, &b| load[a].total_cmp(&load[b]).then(a.cmp(&b)))
                        .expect("n >= 1");
                    load[k] += est(r);
                    k
                })
                .collect()
        }
        RouterPolicy::ShortestPrompt => {
            // Length-class affinity: rank by prompt length (ties by
            // position) and split the ranking into n contiguous classes.
            let mut order: Vec<usize> = (0..reqs.len()).collect();
            order.sort_by_key(|&i| (reqs[i].prompt_tokens, i));
            let per = reqs.len().div_ceil(n);
            let mut routes = vec![0usize; reqs.len()];
            for (rank, &i) in order.iter().enumerate() {
                routes[i] = (rank / per.max(1)).min(n - 1);
            }
            routes
        }
    }
}

/// The fleet-level report: work sums, the fleet makespan (max over
/// chips), utilization normalized by chip count, and exact quantiles
/// over the concatenated raw samples. With one chip this reproduces the
/// plain simulator's report bit-for-bit.
fn merge_reports(
    replicas: &[ServeReport],
    chips: usize,
    completed: usize,
    output_tokens: usize,
    mut ttft: Vec<f64>,
    mut tpot: Vec<f64>,
    mut e2e: Vec<f64>,
) -> ServeReport {
    let iterations: usize = replicas.iter().map(|r| r.iterations).sum();
    let busy: f64 = replicas.iter().map(|r| r.busy_s).sum();
    let makespan = replicas.iter().map(|r| r.makespan_s).fold(0.0f64, f64::max);
    ServeReport {
        completed,
        output_tokens,
        iterations,
        makespan_s: makespan,
        busy_s: busy,
        goodput_rps: if makespan > 0.0 { completed as f64 / makespan } else { 0.0 },
        token_throughput_per_s: if makespan > 0.0 { output_tokens as f64 / makespan } else { 0.0 },
        utilization: if makespan > 0.0 { busy / (chips as f64 * makespan) } else { 0.0 },
        peak_resident_bytes: replicas.iter().map(|r| r.peak_resident_bytes).max().unwrap_or(0),
        peak_batch: replicas.iter().map(|r| r.peak_batch).max().unwrap_or(0),
        buffer_bytes: replicas.first().map_or(0, |r| r.buffer_bytes),
        ttft: LatencyStats::of(&mut ttft),
        tpot: LatencyStats::of(&mut tpot),
        e2e: LatencyStats::of(&mut e2e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{Arrivals, LengthMix, TrafficSpec};
    use fusemax_model::ConfigKind;
    use fusemax_workloads::TransformerConfig;

    fn replica() -> ServeSim {
        let kind = ConfigKind::FuseMaxBinding;
        ServeSim::builder(
            kind,
            kind.default_arch(),
            TransformerConfig::bert(),
            ModelParams::default(),
        )
        .build()
    }

    fn mixed_trace(rate: f64, requests: usize) -> Trace {
        TrafficSpec {
            arrivals: Arrivals::Poisson { rate_per_s: rate },
            prompt_mix: LengthMix::new([(512, 3.0), (4096, 1.0)]),
            output_mix: LengthMix::uniform([4, 16]),
            requests,
        }
        .generate(23)
    }

    #[test]
    fn a_single_replica_fleet_is_bit_identical_to_the_plain_sim() {
        let trace = mixed_trace(200.0, 50);
        let plain = replica().run(&trace);
        for router in [RouterPolicy::RoundRobin, RouterPolicy::LeastLoaded] {
            let fleet = Fleet::new(FleetSpec::single().with_router(router), replica());
            assert_eq!(fleet.run(&trace), plain, "router {router:?}");
        }
    }

    #[test]
    fn every_router_routes_every_request_exactly_once() {
        let trace = mixed_trace(400.0, 60);
        for router in
            [RouterPolicy::RoundRobin, RouterPolicy::LeastLoaded, RouterPolicy::ShortestPrompt]
        {
            let fleet = Fleet::new(FleetSpec::replicated(4).with_router(router), replica());
            let routes = fleet.route(&trace);
            assert_eq!(routes.len(), trace.len());
            assert!(routes.iter().all(|&k| k < 4), "replica index out of range");
            let counts = routes.iter().fold(vec![0usize; 4], |mut c, &k| {
                c[k] += 1;
                c
            });
            assert_eq!(counts.iter().sum::<usize>(), trace.len());
            assert_eq!(routes, fleet.route(&trace), "routing must be deterministic");
        }
    }

    #[test]
    fn round_robin_cycles_and_shortest_prompt_groups_by_length() {
        let trace = mixed_trace(400.0, 40);
        let rr = Fleet::new(FleetSpec::replicated(3), replica()).route(&trace);
        assert!(rr.iter().enumerate().all(|(i, &k)| k == i % 3));

        let sp = Fleet::new(
            FleetSpec::replicated(2).with_router(RouterPolicy::ShortestPrompt),
            replica(),
        )
        .route(&trace);
        // All short prompts land strictly before long ones in rank order:
        // no long prompt maps to a lower class than any short prompt.
        let max_short = trace
            .requests
            .iter()
            .zip(&sp)
            .filter(|(r, _)| r.prompt_tokens == 512)
            .map(|(_, &k)| k)
            .max()
            .unwrap();
        let min_long = trace
            .requests
            .iter()
            .zip(&sp)
            .filter(|(r, _)| r.prompt_tokens == 4096)
            .map(|(_, &k)| k)
            .min()
            .unwrap();
        assert!(max_short <= min_long, "length classes must be contiguous");
    }

    #[test]
    fn merged_quantiles_are_exact_over_the_union_of_samples() {
        let trace = mixed_trace(500.0, 60);
        let fleet = Fleet::new(FleetSpec::replicated(3), replica());
        let detailed = fleet.run_detailed(&trace);

        // Recompute from scratch: shard the trace by the public route,
        // run each shard on a plain sim, concatenate raw samples.
        let routes = fleet.route(&trace);
        let costs = replica().service_times(&trace);
        let (mut ttft, mut e2e) = (Vec::new(), Vec::new());
        let mut completed = 0;
        for k in 0..3 {
            let sub = Trace {
                requests: trace
                    .requests
                    .iter()
                    .zip(&routes)
                    .filter(|(_, &r)| r == k)
                    .map(|(q, _)| *q)
                    .collect(),
            };
            let (report, samples) = replica().run_sampled_with(&costs, &sub);
            completed += report.completed;
            ttft.extend(samples.ttft);
            e2e.extend(samples.e2e);
        }
        assert_eq!(completed, detailed.merged.completed);
        assert_eq!(LatencyStats::of(&mut ttft), detailed.merged.ttft);
        assert_eq!(LatencyStats::of(&mut e2e), detailed.merged.e2e);
    }

    #[test]
    fn fleet_replays_are_bit_identical_and_tracing_changes_nothing() {
        let trace = mixed_trace(300.0, 50);
        for spec in [
            FleetSpec::replicated(4).with_router(RouterPolicy::LeastLoaded),
            FleetSpec::disaggregated(1, 3),
        ] {
            let fleet = Fleet::new(spec, replica());
            let a = fleet.run_detailed(&trace);
            let b = fleet.run_detailed(&trace);
            assert_eq!(a, b, "{spec}");
            let (recorder, sink) = VecSink::recorder();
            let traced = Fleet::new(spec, replica()).with_recorder(recorder);
            let t = traced.run_detailed(&trace);
            assert_eq!(t.merged, a.merged, "tracing must not change the report ({spec})");
            assert_eq!(t.replica_events.len(), spec.chips());
            assert!(
                sink.events()
                    .iter()
                    .any(|e| matches!(e, Event::Serve { kind: ServeEvent::Route { .. }, .. })),
                "router must emit Route events"
            );
        }
    }

    #[test]
    fn disaggregation_completes_everything_and_charges_the_kv_wire() {
        let trace = mixed_trace(300.0, 50);
        let fleet = Fleet::new(FleetSpec::disaggregated(2, 2), replica());
        let detailed = fleet.run_detailed(&trace);
        assert_eq!(detailed.merged.completed, 50);
        assert_eq!(detailed.replicas.len(), 4);
        assert_eq!(detailed.merged.ttft.samples, 50, "every prompt prefills on stage 1");
        assert!(detailed.kv_transfer_bytes > 0);
        assert!(detailed.kv_transfer_s > 0.0);
        // The wire time really is bytes over DRAM bandwidth.
        let bw = replica().arch().dram_bw_bytes_per_sec;
        let expected: f64 = detailed.kv_transfer_bytes as f64 / bw;
        assert!((detailed.kv_transfer_s - expected).abs() < 1e-9 * expected.max(1.0));
        // End-to-end latency includes both stages plus the wire, so the
        // fleet e2e mean can never beat the prefill-only stage's.
        assert!(detailed.merged.e2e.mean >= detailed.merged.ttft.mean);
    }

    #[test]
    fn more_replicas_cut_tail_latency_under_heavy_load() {
        let trace = mixed_trace(800.0, 60);
        let one = Fleet::new(FleetSpec::single(), replica()).run(&trace);
        let four = Fleet::new(FleetSpec::replicated(4), replica()).run(&trace);
        assert!(
            four.ttft.p99 < one.ttft.p99,
            "4x fleet p99 TTFT {} must beat 1x {}",
            four.ttft.p99,
            one.ttft.p99
        );
        assert!(four.goodput_rps >= one.goodput_rps);
    }
}
