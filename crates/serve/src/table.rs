//! Precomputed per-design service times: every analytical-model call a
//! trace replay needs, evaluated up front so the simulator's iteration
//! loop is pure table lookups.
//!
//! The pre-table engine memoized service times lazily, which meant
//! `fusemax_model::e2e_report_on` ran *inside* the iteration loop on
//! first touch of each length — fine for one replay, wasteful when the
//! [`crate::ServeObjective`] replays the same trace against a whole
//! frontier or a search loop replays many traces against one design. A
//! [`ServiceTimeTable`] hoists those calls to construction time:
//!
//! * **prefill** — one entry per *distinct prompt length* in the trace
//!   (prefill cost is exact in the prompt length, so bucketing it would
//!   change reports);
//! * **decode** — one entry per power-of-two context bucket spanning the
//!   trace's actual decode range (`min prompt + 1` up to
//!   `max (prompt + output - 1)` over requests that decode at all),
//!   matching the engine's bucketing assumption that decode cost varies
//!   slowly in context.
//!
//! Values are computed by the same formulas the lazy path used, so
//! replays through a table are bit-identical to the pre-table engine
//! (golden-gated). Lookups outside the precomputed set fall back to an
//! on-demand model call and are *counted* ([`ServiceTimeTable::misses`]);
//! the test suite asserts a table built for a trace serves its replay
//! with zero misses — i.e. zero `e2e_report_on` calls inside the loop.

use crate::traffic::Trace;
use fusemax_arch::ArchConfig;
use fusemax_dse::SchedulerPolicy;
use fusemax_model::{e2e_report_on, ConfigKind, ModelParams};
use fusemax_workloads::TransformerConfig;
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};

/// Phase service times for one `(configuration, architecture, workload)`
/// design, precomputed for a trace's length set.
#[derive(Debug)]
pub struct ServiceTimeTable {
    kind: ConfigKind,
    arch: ArchConfig,
    /// The served model at `batch = 1` (per-request service costs; the
    /// scheduler decides how many requests share the chip).
    workload: TransformerConfig,
    params: ModelParams,
    prefill_s: HashMap<usize, f64>,
    decode_s_per_token: HashMap<usize, f64>,
    /// Analytical-model calls spent building the table.
    model_evaluations: usize,
    /// Lookups that fell outside the precomputed set and paid for an
    /// on-demand model call (zero for any trace the table was built for).
    misses: AtomicU64,
}

impl ServiceTimeTable {
    /// Builds the table for `trace` replayed on the given design: one
    /// prefill entry per distinct prompt length, one decode entry per
    /// power-of-two context bucket across the trace's decode-context
    /// range.
    pub fn build(
        kind: ConfigKind,
        arch: ArchConfig,
        workload: &TransformerConfig,
        params: ModelParams,
        trace: &Trace,
    ) -> Self {
        let workload = workload.with_batch(1);
        let mut table = ServiceTimeTable {
            kind,
            arch,
            workload,
            params,
            prefill_s: HashMap::new(),
            decode_s_per_token: HashMap::new(),
            model_evaluations: 0,
            misses: AtomicU64::new(0),
        };

        // Distinct prompt lengths, sorted for deterministic build order.
        let prompts: BTreeSet<usize> = trace.requests.iter().map(|r| r.prompt_tokens).collect();
        // Only requests with ≥ 2 output tokens ever decode (prefill covers
        // the first token), at contexts `prompt + 1 ..= prompt + output - 1`
        // — so precompute exactly the power-of-two buckets that span that
        // range, not every octave from 1.
        let decode_range = trace
            .requests
            .iter()
            .filter(|r| r.output_tokens >= 2)
            .map(|r| (r.prompt_tokens + 1, r.prompt_tokens + r.output_tokens - 1))
            .fold(None::<(usize, usize)>, |acc, (lo, hi)| match acc {
                None => Some((lo, hi)),
                Some((alo, ahi)) => Some((alo.min(lo), ahi.max(hi))),
            });

        for &prompt in &prompts {
            let s = table.e2e_seconds(prompt);
            table.model_evaluations += 1;
            table.prefill_s.insert(prompt, s);
        }
        if let Some((lo, hi)) = decode_range {
            let top = hi.max(1).next_power_of_two();
            let mut bucket = lo.max(1).next_power_of_two();
            loop {
                let s = table.e2e_seconds(bucket) / bucket as f64;
                table.model_evaluations += 1;
                table.decode_s_per_token.insert(bucket, s);
                if bucket >= top {
                    break;
                }
                bucket *= 2;
            }
        }
        table
    }

    /// Builds the table for `trace` replayed under `policy`: exactly
    /// [`ServiceTimeTable::build`], plus — when the policy chunks prefill —
    /// one entry per chunk boundary (`k · chunk_tokens` below each distinct
    /// prompt length), so [`ServiceTimeTable::prefill_chunk_seconds`]
    /// lookups during a chunked replay never miss. Under a whole-prompt
    /// policy the table is identical to the plain build.
    pub fn build_with_policy(
        kind: ConfigKind,
        arch: ArchConfig,
        workload: &TransformerConfig,
        params: ModelParams,
        trace: &Trace,
        policy: &SchedulerPolicy,
    ) -> Self {
        let mut table = Self::build(kind, arch, workload, params, trace);
        if let Some(chunk) = policy.chunk_tokens {
            let mut boundaries: BTreeSet<usize> = BTreeSet::new();
            for r in &trace.requests {
                let mut b = chunk;
                while b < r.prompt_tokens {
                    boundaries.insert(b);
                    b += chunk;
                }
            }
            for &b in &boundaries {
                if !table.prefill_s.contains_key(&b) {
                    let s = table.e2e_seconds(b);
                    table.model_evaluations += 1;
                    table.prefill_s.insert(b, s);
                }
            }
        }
        table
    }

    /// Full-model seconds to run one request end to end at sequence
    /// length `l` on this design — the single analytical-model entry
    /// point behind both phases.
    fn e2e_seconds(&self, l: usize) -> f64 {
        let report = e2e_report_on(self.kind, &self.workload, l, &self.arch, &self.params);
        self.arch.cycles_to_seconds(report.cycles)
    }

    /// Seconds to prefill a `prompt`-token request. Precomputed lengths
    /// are a lookup; anything else falls back to an on-demand model call
    /// and bumps [`ServiceTimeTable::misses`].
    pub fn prefill_seconds(&self, prompt: usize) -> f64 {
        match self.prefill_s.get(&prompt) {
            Some(&s) => s,
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.e2e_seconds(prompt)
            }
        }
    }

    /// Seconds to run one prefill chunk covering prompt tokens
    /// `[from, upto)` of a request: the marginal cost
    /// `e2e(upto) − e2e(from)`, with `e2e(0) = 0` — so a whole prompt
    /// prefilled in one chunk charges exactly
    /// [`ServiceTimeTable::prefill_seconds`] of the full prompt, which is
    /// what keeps whole-prompt chunked replays bit-identical to the
    /// unchunked engine. Boundaries a policy-aware build
    /// ([`ServiceTimeTable::build_with_policy`]) precomputed are lookups;
    /// anything else pays an on-demand model call per missing endpoint.
    pub fn prefill_chunk_seconds(&self, from: usize, upto: usize) -> f64 {
        if from == 0 {
            self.prefill_seconds(upto)
        } else {
            self.prefill_seconds(upto) - self.prefill_seconds(from)
        }
    }

    /// Seconds to decode one token at context length `context`, amortized
    /// from the analytical report (`e2e(L) / L` per token) at the next
    /// power-of-two bucket.
    pub fn decode_seconds(&self, context: usize) -> f64 {
        let bucket = context.max(1).next_power_of_two();
        match self.decode_s_per_token.get(&bucket) {
            Some(&s) => s,
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.e2e_seconds(bucket) / bucket as f64
            }
        }
    }

    /// Analytical-model calls spent at build time (distinct prompt
    /// lengths + power-of-two decode buckets).
    pub fn model_evaluations(&self) -> usize {
        self.model_evaluations
    }

    /// Lookups since construction that fell outside the precomputed set
    /// and ran the model on demand. Zero when the table serves the trace
    /// it was built for — the assertion that the iteration loop performs
    /// no `e2e_report_on` calls.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{Arrivals, LengthMix, TrafficSpec};

    fn trace() -> Trace {
        TrafficSpec {
            arrivals: Arrivals::Poisson { rate_per_s: 100.0 },
            prompt_mix: LengthMix::new([(300, 2.0), (1024, 1.0)]),
            output_mix: LengthMix::uniform([4, 16]),
            requests: 30,
        }
        .generate(3)
    }

    fn table_for(t: &Trace) -> ServiceTimeTable {
        let kind = ConfigKind::FuseMaxBinding;
        ServiceTimeTable::build(
            kind,
            kind.default_arch(),
            &TransformerConfig::bert(),
            ModelParams::default(),
            t,
        )
    }

    #[test]
    fn covers_every_trace_length_without_misses() {
        let t = trace();
        let table = table_for(&t);
        assert!(table.model_evaluations() > 0);
        // Mirror the engine exactly: every request prefills at its prompt
        // length; requests with ≥ 2 output tokens decode at contexts
        // prompt + 1 ..= prompt + output - 1.
        for r in &t.requests {
            let _ = table.prefill_seconds(r.prompt_tokens);
            if r.output_tokens >= 2 {
                for ctx in r.prompt_tokens + 1..r.prompt_tokens + r.output_tokens {
                    let _ = table.decode_seconds(ctx);
                }
            }
        }
        assert_eq!(table.misses(), 0, "a built table must cover its trace");
    }

    #[test]
    fn build_cost_spans_only_the_decode_range_plus_distinct_prompts() {
        let t = trace();
        let table = table_for(&t);
        let distinct_prompts = 2; // 300 and 1024 by construction
        let (lo, hi) = t
            .requests
            .iter()
            .filter(|r| r.output_tokens >= 2)
            .map(|r| (r.prompt_tokens + 1, r.prompt_tokens + r.output_tokens - 1))
            .fold((usize::MAX, 0), |(lo, hi), (a, b)| (lo.min(a), hi.max(b)));
        let first = lo.next_power_of_two().trailing_zeros();
        let last = hi.next_power_of_two().trailing_zeros();
        let buckets = (last - first + 1) as usize;
        assert_eq!(table.model_evaluations(), distinct_prompts + buckets);
        // No octave below the smallest decodable context was paid for:
        // prompts are ≥ 300, so buckets 1..=256 must be absent.
        assert!(first >= 9, "decode buckets start at 512 for ≥300-token prompts");
    }

    #[test]
    fn fallback_misses_are_counted_and_bit_identical() {
        let t = trace();
        let table = table_for(&t);
        // A length outside the trace: the fallback computes the same
        // value a covering table would hold.
        let outside = 77_777usize;
        let a = table.prefill_seconds(outside);
        let b = table.prefill_seconds(outside);
        assert_eq!(a.to_bits(), b.to_bits());
        assert_eq!(table.misses(), 2);
        let huge_ctx = 1 << 21;
        let _ = table.decode_seconds(huge_ctx);
        assert_eq!(table.misses(), 3);
    }

    #[test]
    fn empty_traces_build_empty_tables() {
        let table = table_for(&Trace::default());
        assert_eq!(table.model_evaluations(), 0);
        assert_eq!(table.misses(), 0);
    }

    #[test]
    fn policy_builds_add_only_chunk_boundaries() {
        let t = trace();
        let kind = ConfigKind::FuseMaxBinding;
        let build = |policy: &SchedulerPolicy| {
            ServiceTimeTable::build_with_policy(
                kind,
                kind.default_arch(),
                &TransformerConfig::bert(),
                ModelParams::default(),
                &t,
                policy,
            )
        };
        let plain = table_for(&t);
        // A whole-prompt policy build is the plain build.
        let unbounded = build(&SchedulerPolicy::unbounded());
        assert_eq!(unbounded.model_evaluations(), plain.model_evaluations());
        // Prompts are 300 and 1024; a 256-token chunk adds boundaries
        // 256 (both) and 512, 768 (1024 only) — three new entries.
        let chunked = build(&SchedulerPolicy::chunked(256));
        assert_eq!(chunked.model_evaluations(), plain.model_evaluations() + 3);
        // Chunk costs telescope to the exact whole-prompt cost.
        let total = chunked.prefill_chunk_seconds(0, 256) + chunked.prefill_chunk_seconds(256, 300);
        let direct = chunked.prefill_seconds(300);
        assert!((total - direct).abs() < direct * 1e-9);
        assert_eq!(chunked.misses(), 0);
        // And a single chunk covering the whole prompt IS the whole-prompt
        // cost, bit for bit.
        assert_eq!(
            chunked.prefill_chunk_seconds(0, 1024).to_bits(),
            chunked.prefill_seconds(1024).to_bits()
        );
    }
}
