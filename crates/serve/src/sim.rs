//! The deterministic serving engine: iteration-granularity continuous
//! batching of prefill and decode phases over one design point, with
//! per-phase service times taken from the analytical model.
//!
//! The engine advances in *iterations* (the Orca/vLLM scheduling shape):
//! each iteration prefills the requests admitted since the last one and
//! decodes one token for every resident request, taking time equal to the
//! sum of the per-phase service costs. Admission is byte-granular: each
//! request reserves its per-layer K/V footprint in the design's global
//! buffer and the queue stalls when the buffer is full (the
//! uniform-request-size shorthand is
//! [`fusemax_arch::ArchConfig::max_resident_requests`]) — which is what
//! couples the serving behavior to the *architecture* rather than to a
//! fixed batch-size knob.
//!
//! # The scheduler policy
//!
//! A [`SchedulerPolicy`] changes *when* prefill work runs, not what it
//! costs in total:
//!
//! * **Chunked prefill** (`chunk_tokens = Some(c)`): each iteration may
//!   spend at most `c` prompt tokens on prefill, split into per-request
//!   chunks that stay aligned to multiples of `c` (plus each prompt's
//!   final remainder) — so a long prompt no longer monopolizes an entire
//!   iteration and decode latency for resident requests stays bounded.
//! * **Admission ratio** (`waiting_served_ratio = r > 0`): a non-empty
//!   engine only admits when the waiting queue holds at least `r ×` the
//!   resident count, batching admissions the way TGI's router batches
//!   prefills.
//! * **Queue order**: FCFS or shortest-prompt-first.
//!
//! The default [`SchedulerPolicy::unbounded`] (whole-prompt chunks, FCFS,
//! greedy admission) reproduces the pre-policy engine **byte-for-byte**:
//! same float-summation order, same event sequence — the golden serve
//! trace gate enforces this.

use crate::attribution::LatencyAttribution;
use crate::fault::ReplicaFaults;
use crate::report::{LatencyStats, ServeReport};
use crate::table::ServiceTimeTable;
use crate::traffic::Trace;
use fusemax_arch::ArchConfig;
use fusemax_dse::{DesignPoint, QueueOrder, SchedulerPolicy};
use fusemax_model::{ConfigKind, ModelParams};
use fusemax_telemetry::{Event, Recorder, ServeEvent};
use fusemax_workloads::TransformerConfig;
use std::collections::VecDeque;

/// One resident request mid-flight.
struct Active {
    /// Index into the trace's request list.
    idx: usize,
    /// `false` until the prefill phase has covered the whole prompt.
    prefilled: bool,
    /// Output tokens still to decode after the prefill token.
    remaining: usize,
    /// Current context length in tokens.
    context: usize,
    /// Prompt tokens already prefilled (only advances in chunks under a
    /// chunked policy; jumps straight to the prompt length otherwise).
    prefilled_tokens: usize,
    /// Buffer bytes reserved for this request's peak K/V state.
    kv_bytes: u64,
    /// Wall-clock time the first output token appeared.
    first_token_s: f64,
    /// Wall-clock time this request was admitted (attribution only).
    admit_s: f64,
    /// Prefill service seconds charged to this request so far
    /// (attribution only; never feeds back into the report's floats).
    prefill_busy_s: f64,
    /// Recorded time-to-first-token (attribution only).
    ttft_s: f64,
}

/// A deterministic discrete-event serving simulator for one design point.
///
/// Replaying the same [`Trace`] twice produces bit-identical
/// [`ServeReport`]s: the engine is single-threaded, allocates no
/// randomness of its own, and its service times are pure functions of the
/// analytical model.
///
/// # Example
///
/// ```
/// use fusemax_model::{ConfigKind, ModelParams};
/// use fusemax_serve::{Arrivals, LengthMix, ServeSim, TrafficSpec};
/// use fusemax_workloads::TransformerConfig;
///
/// let trace = TrafficSpec {
///     arrivals: Arrivals::Poisson { rate_per_s: 50.0 },
///     prompt_mix: LengthMix::fixed(512),
///     output_mix: LengthMix::fixed(16),
///     requests: 40,
/// }
/// .generate(7);
///
/// let sim = ServeSim::builder(
///     ConfigKind::FuseMaxBinding,
///     ConfigKind::FuseMaxBinding.default_arch(),
///     TransformerConfig::bert(),
///     ModelParams::default(),
/// )
/// .build();
/// let report = sim.run(&trace);
/// assert_eq!(report.completed, 40);
/// assert_eq!(report, sim.run(&trace), "replay is bit-identical");
/// ```
#[derive(Debug, Clone)]
pub struct ServeSim {
    kind: ConfigKind,
    arch: ArchConfig,
    workload: TransformerConfig,
    params: ModelParams,
    policy: SchedulerPolicy,
    recorder: Recorder,
    /// Decode-chip mode for disaggregated fleets: admitted requests
    /// arrive with their prompt already prefilled elsewhere, so they go
    /// straight to decode and contribute no TTFT sample of their own.
    start_prefilled: bool,
}

/// The one construction path for [`ServeSim`]: pick a policy and a
/// recorder, then [`build`](ServeSimBuilder::build). Every replay of the
/// built simulator goes through the precomputed [`ServiceTimeTable`]
/// path ([`ServeSim::run`] builds the table, [`ServeSim::run_with`]
/// reuses one).
#[derive(Debug, Clone)]
pub struct ServeSimBuilder {
    sim: ServeSim,
}

impl ServeSimBuilder {
    /// Replaces the scheduler policy. [`SchedulerPolicy::unbounded`]
    /// (the default) reproduces the pre-policy engine byte-for-byte.
    pub fn policy(mut self, policy: SchedulerPolicy) -> Self {
        self.sim.policy = policy;
        self
    }

    /// Attaches a telemetry recorder: every replay emits arrival,
    /// admission, prefill, decode-iteration, completion, and queue-depth
    /// events at **simulated** timestamps. Instrumentation never changes
    /// the report — the engine is single-threaded and the recorder is
    /// write-only — so instrumented and uninstrumented replays are
    /// bit-identical (test-enforced), and the event stream itself replays
    /// byte-identically for a given trace.
    pub fn recorder(mut self, recorder: Recorder) -> Self {
        self.sim.recorder = recorder;
        self
    }

    /// The finished simulator.
    ///
    /// # Panics
    ///
    /// Panics when the configured scheduler policy is invalid (e.g. a
    /// zero-token prefill chunk). Use
    /// [`try_build`](ServeSimBuilder::try_build) to get the violation as
    /// a typed error instead.
    pub fn build(self) -> ServeSim {
        match self.try_build() {
            Ok(sim) => sim,
            Err(e) => panic!("invalid serve configuration: {e}"),
        }
    }

    /// The finished simulator, or the first configuration violation —
    /// the non-panicking [`build`](ServeSimBuilder::build) for
    /// configurations assembled from external input (CLI flags, JSON)
    /// rather than the asserting constructors.
    pub fn try_build(self) -> Result<ServeSim, fusemax_dse::SpecError> {
        self.sim.policy.validate()?;
        Ok(self.sim)
    }
}

impl ServeSim {
    /// A builder for a simulator for `kind` running on `arch`, serving
    /// `workload` — by default under the whole-prompt/FCFS scheduler
    /// ([`SchedulerPolicy::unbounded`]) with telemetry disabled.
    pub fn builder(
        kind: ConfigKind,
        arch: ArchConfig,
        workload: TransformerConfig,
        params: ModelParams,
    ) -> ServeSimBuilder {
        ServeSimBuilder {
            sim: ServeSim {
                kind,
                arch,
                workload,
                params,
                policy: SchedulerPolicy::unbounded(),
                recorder: Recorder::disabled(),
                start_prefilled: false,
            },
        }
    }

    /// A simulator with the default policy and no recorder.
    #[deprecated(note = "use `ServeSim::builder(kind, arch, workload, params).build()`")]
    pub fn new(
        kind: ConfigKind,
        arch: ArchConfig,
        workload: TransformerConfig,
        params: ModelParams,
    ) -> Self {
        Self::builder(kind, arch, workload, params).build()
    }

    /// Replaces the scheduler policy.
    #[deprecated(note = "use `ServeSim::builder(...).policy(...)`")]
    pub fn with_policy(mut self, policy: SchedulerPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The scheduler policy replays run under.
    pub fn policy(&self) -> SchedulerPolicy {
        self.policy
    }

    /// Attaches a telemetry recorder.
    #[deprecated(note = "use `ServeSim::builder(...).recorder(...)`")]
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// A simulator for a DSE design point: the point's configuration,
    /// architecture, workload, **and scheduler policy** — so
    /// policy-extended searches co-design hardware and scheduler through
    /// the same serving objective. (The point's *fleet* axis is the
    /// [`crate::Fleet`] layer's concern: this is one replica chip.)
    pub fn for_point(point: &DesignPoint, params: &ModelParams) -> Self {
        Self::builder_for_point(point, params).build()
    }

    /// A builder seeded from a DSE design point — [`ServeSim::for_point`]
    /// plus the ability to override the scheduler policy or attach a
    /// telemetry recorder before building.
    pub fn builder_for_point(point: &DesignPoint, params: &ModelParams) -> ServeSimBuilder {
        Self::builder(point.kind, point.arch.clone(), point.workload.clone(), params.clone())
            .policy(point.policy)
    }

    /// A copy of this simulator re-armed as one fleet replica chip: same
    /// design, fresh recorder, optionally in decode-only
    /// (`start_prefilled`) mode.
    pub(crate) fn fleet_replica(&self, recorder: Recorder, start_prefilled: bool) -> ServeSim {
        let mut sim = self.clone();
        sim.recorder = recorder;
        sim.start_prefilled = start_prefilled;
        sim
    }

    /// The workload being served.
    pub(crate) fn workload(&self) -> &TransformerConfig {
        &self.workload
    }

    /// The architecture being served.
    pub fn arch(&self) -> &ArchConfig {
        &self.arch
    }

    /// Buffer bytes one request of `prompt + output` tokens reserves: its
    /// peak *per-layer* K/V footprint. Layers execute one at a time, so
    /// only the current layer's K/V slice must be buffer-resident per
    /// request; the full-model cache
    /// ([`TransformerConfig::kv_bytes_per_token`]) streams through DRAM.
    fn request_kv_bytes(&self, prompt: usize, output: usize) -> u64 {
        let per_token =
            self.workload.kv_bytes_per_token(self.arch.word_bytes) / self.workload.layers as u64;
        (prompt + output) as u64 * per_token
    }

    /// Precomputes every service time a replay of `trace` on this design
    /// needs ([`ServiceTimeTable`]): build once, replay many times — the
    /// serving objective's per-frontier-member replays and repeated
    /// what-if runs stop re-deriving the same model results.
    pub fn service_times(&self, trace: &Trace) -> ServiceTimeTable {
        ServiceTimeTable::build_with_policy(
            self.kind,
            self.arch.clone(),
            &self.workload,
            self.params.clone(),
            trace,
            &self.policy,
        )
    }

    /// Serves `trace` to completion and reports throughput, utilization,
    /// and exact latency quantiles. Builds a fresh [`ServiceTimeTable`]
    /// for the trace; use [`ServeSim::run_with`] to amortize the table
    /// across replays.
    pub fn run(&self, trace: &Trace) -> ServeReport {
        self.run_with(&self.service_times(trace), trace)
    }

    /// Serves `trace` using precomputed service times. The iteration loop
    /// performs **zero** analytical-model calls when `table` covers the
    /// trace (it always does for a table built by
    /// [`ServeSim::service_times`] on the same trace — assert with
    /// [`ServiceTimeTable::misses`]); reports are bit-identical to
    /// [`ServeSim::run`] either way because fallback lookups compute the
    /// exact same values.
    pub fn run_with(&self, costs: &ServiceTimeTable, trace: &Trace) -> ServeReport {
        self.run_sampled_with(costs, trace).0
    }

    /// [`ServeSim::run_with`], additionally returning the raw
    /// per-request samples behind the report's quantiles — the fleet
    /// layer merges replicas by concatenating these and recomputing
    /// exact quantiles over the union, so fleet-level tails are never
    /// approximated from per-replica summaries.
    pub fn run_sampled_with(
        &self,
        costs: &ServiceTimeTable,
        trace: &Trace,
    ) -> (ServeReport, RunSamples) {
        let reqs = &trace.requests;
        let buffer = self.arch.global_buffer_bytes;

        let mut clock = 0.0f64;
        let mut busy = 0.0f64;
        let mut next = 0usize; // next trace request not yet arrived
        let mut queue: VecDeque<usize> = VecDeque::new();
        let mut active: Vec<Active> = Vec::new();
        let mut resident_bytes = 0u64;
        let mut peak_resident_bytes = 0u64;
        let mut peak_batch = 0usize;
        let mut iterations = 0usize;

        let mut ttft = Vec::with_capacity(reqs.len());
        let mut e2e = Vec::with_capacity(reqs.len());
        let mut tpot = Vec::new();
        let mut completions: Vec<(usize, f64)> = Vec::with_capacity(reqs.len());
        let mut attributions: Vec<LatencyAttribution> = Vec::with_capacity(reqs.len());
        let mut completed = 0usize;
        let mut output_tokens = 0usize;

        let unbounded = self.policy.is_unbounded();
        let ratio = self.policy.waiting_served_ratio;

        loop {
            // Pull every request that has arrived by now into the
            // policy-ordered waiting queue.
            while next < reqs.len() && reqs[next].arrival_s <= clock {
                let (at, req) = (reqs[next].arrival_s, reqs[next].id as u64);
                self.recorder.emit(|| Event::serve(at, ServeEvent::Arrive { req }));
                if !unbounded {
                    self.recorder.emit(|| Event::serve(at, ServeEvent::Enqueue { req }));
                }
                queue.push_back(next);
                next += 1;
            }
            if active.is_empty() && queue.is_empty() {
                if next >= reqs.len() {
                    break;
                }
                // Idle: jump to the next arrival.
                clock = reqs[next].arrival_s;
                continue;
            }

            // Continuous batching: admit the policy's next waiting request
            // while its K/V state fits in the global buffer (and, under a
            // positive waiting/served ratio, while the queue is deep
            // enough relative to the resident batch). An empty engine
            // always admits its first request — one larger than the
            // buffer streams through DRAM rather than being unservable.
            loop {
                let pos = match self.policy.queue_order {
                    QueueOrder::Fcfs => 0,
                    QueueOrder::ShortestPromptFirst => (0..queue.len())
                        .min_by_key(|&j| (reqs[queue[j]].prompt_tokens, queue[j]))
                        .unwrap_or(0),
                };
                let Some(&i) = queue.get(pos) else { break };
                let bytes = self.request_kv_bytes(reqs[i].prompt_tokens, reqs[i].output_tokens);
                if !active.is_empty() && resident_bytes + bytes > buffer {
                    break;
                }
                if ratio > 0.0
                    && !active.is_empty()
                    && (queue.len() as f64) < ratio * active.len() as f64
                {
                    break;
                }
                queue.remove(pos);
                let req = reqs[i].id as u64;
                if !unbounded {
                    self.recorder.emit(|| Event::serve(clock, ServeEvent::Dequeue { req }));
                }
                self.recorder.emit(|| Event::serve(clock, ServeEvent::Admit { req }));
                resident_bytes += bytes;
                active.push(Active {
                    idx: i,
                    prefilled: self.start_prefilled,
                    // Prefill produces the first output token; a
                    // hand-built request with `output_tokens = 0` behaves
                    // like 1 rather than underflowing.
                    remaining: reqs[i].output_tokens.saturating_sub(1),
                    context: if self.start_prefilled {
                        reqs[i].prompt_tokens + 1
                    } else {
                        reqs[i].prompt_tokens
                    },
                    prefilled_tokens: if self.start_prefilled { reqs[i].prompt_tokens } else { 0 },
                    kv_bytes: bytes,
                    // In decode-only mode the first token already exists;
                    // clocking it at admission makes TPOT measure this
                    // chip's decode cadence.
                    first_token_s: if self.start_prefilled { clock } else { 0.0 },
                    admit_s: clock,
                    prefill_busy_s: 0.0,
                    ttft_s: 0.0,
                });
            }
            peak_resident_bytes = peak_resident_bytes.max(resident_bytes);
            peak_batch = peak_batch.max(active.len());

            // One engine iteration: prefill the newly admitted (whole
            // prompts, or token-budgeted chunks under a chunked policy)
            // and decode one token for every prefilled resident. `granted`
            // records each unprefilled request's prompt-token progress
            // this iteration (`None` = starved by the chunk budget).
            let mut step = 0.0f64;
            let mut chunk_budget = self.policy.chunk_tokens.unwrap_or(0);
            let mut granted: Vec<Option<usize>> = Vec::with_capacity(active.len());
            // Prefill seconds charged to each active request this
            // iteration (attribution only; `step` accumulates the exact
            // same values in the exact same order as before).
            let mut charged: Vec<f64> = Vec::with_capacity(active.len());
            for a in &active {
                let mut cost = 0.0f64;
                let grant = if a.prefilled {
                    step += costs.decode_seconds(a.context);
                    None
                } else if let Some(chunk) = self.policy.chunk_tokens {
                    let need = a.context - a.prefilled_tokens;
                    let want = need.min(chunk);
                    if need == 0 {
                        // Hand-built zero-length prompt: completes free.
                        Some(0)
                    } else if want <= chunk_budget {
                        chunk_budget -= want;
                        let (req, context) = (reqs[a.idx].id as u64, a.context);
                        if a.prefilled_tokens == 0 {
                            self.recorder.emit(|| {
                                Event::serve(clock, ServeEvent::PrefillStart { req, context })
                            });
                        }
                        let (tokens, remaining) = (want, need - want);
                        self.recorder.emit(|| {
                            Event::serve(clock, ServeEvent::PrefillChunk { req, tokens, remaining })
                        });
                        cost = costs
                            .prefill_chunk_seconds(a.prefilled_tokens, a.prefilled_tokens + want);
                        step += cost;
                        Some(want)
                    } else {
                        None
                    }
                } else {
                    let (req, context) = (reqs[a.idx].id as u64, a.context);
                    self.recorder
                        .emit(|| Event::serve(clock, ServeEvent::PrefillStart { req, context }));
                    cost = costs.prefill_seconds(a.context);
                    step += cost;
                    Some(a.context)
                };
                granted.push(grant);
                charged.push(cost);
            }
            clock += step;
            busy += step;
            iterations += 1;
            let (batch, resident_kv, depth) = (active.len(), resident_bytes, queue.len());
            self.recorder
                .emit(|| Event::serve(clock, ServeEvent::DecodeIter { batch, resident_kv }));
            self.recorder.emit(|| Event::serve(clock, ServeEvent::QueueDepthSample { depth }));
            if !unbounded {
                self.recorder.emit(|| Event::serve(clock, ServeEvent::WaitingDepth { depth }));
            }

            // Apply the iteration's outcomes.
            for ((a, grant), &cost) in active.iter_mut().zip(&granted).zip(&charged) {
                if a.prefilled {
                    // Saturating: a decode-only request hand-built with
                    // `output_tokens <= 1` decodes once instead of
                    // underflowing (normal-mode requests always carry
                    // `remaining >= 1` here).
                    a.remaining = a.remaining.saturating_sub(1);
                    a.context += 1;
                    continue;
                }
                let Some(tokens) = *grant else { continue };
                a.prefill_busy_s += cost;
                a.prefilled_tokens += tokens;
                if a.prefilled_tokens >= reqs[a.idx].prompt_tokens {
                    a.prefilled = true;
                    a.first_token_s = clock;
                    a.context += 1;
                    let req = reqs[a.idx].id as u64;
                    self.recorder.emit(|| Event::serve(clock, ServeEvent::PrefillEnd { req }));
                    let t = clock - reqs[a.idx].arrival_s;
                    a.ttft_s = t;
                    ttft.push(t);
                }
            }
            // Retire finished requests (prefill covers the first output
            // token, so `remaining == 0` right after prefill is complete
            // for single-token outputs).
            let mut i = 0;
            while i < active.len() {
                if active[i].prefilled && active[i].remaining == 0 {
                    let a = active.remove(i);
                    let r = &reqs[a.idx];
                    let req = r.id as u64;
                    self.recorder.emit(|| Event::serve(clock, ServeEvent::Complete { req }));
                    resident_bytes -= a.kv_bytes;
                    completed += 1;
                    output_tokens += r.output_tokens;
                    completions.push((r.id, clock));
                    let e2e_s = clock - r.arrival_s;
                    e2e.push(e2e_s);
                    attributions.push(LatencyAttribution::from_run(
                        r.id,
                        r.arrival_s,
                        a.admit_s,
                        a.prefill_busy_s,
                        if self.start_prefilled { None } else { Some(a.ttft_s) },
                        e2e_s,
                    ));
                    if r.output_tokens > 1 {
                        tpot.push((clock - a.first_token_s) / (r.output_tokens - 1) as f64);
                    }
                } else {
                    i += 1;
                }
            }
        }

        let makespan = clock;
        let report = ServeReport {
            completed,
            output_tokens,
            iterations,
            makespan_s: makespan,
            busy_s: busy,
            goodput_rps: if makespan > 0.0 { completed as f64 / makespan } else { 0.0 },
            token_throughput_per_s: if makespan > 0.0 {
                output_tokens as f64 / makespan
            } else {
                0.0
            },
            utilization: if makespan > 0.0 { busy / makespan } else { 0.0 },
            peak_resident_bytes,
            peak_batch,
            buffer_bytes: buffer,
            ttft: LatencyStats::of(&mut ttft),
            tpot: LatencyStats::of(&mut tpot),
            e2e: LatencyStats::of(&mut e2e),
        };
        (report, RunSamples { ttft, tpot, e2e, completions, attributions })
    }

    /// The fault-aware twin of [`ServeSim::run_sampled_with`]: serves
    /// `trace` on a replica that may be degraded (compute throttle scales
    /// prefill and decode, DRAM brownout additionally scales decode) and
    /// may fail-stop at `faults.horizon_s`.
    ///
    /// Semantics:
    ///
    /// * Iterations are atomic. An iteration that would finish after the
    ///   fail-stop instant never commits — the chip dies at its last
    ///   committed iteration boundary, in-flight requests (including any
    ///   admitted this iteration) lose their K/V state and are returned in
    ///   `lost_active`, and waiting/unarrived requests in `lost_waiting`.
    /// * Degradation multipliers are looked up once per iteration at its
    ///   start time; `×1.0` is bit-exact in IEEE 754, so a run under
    ///   [`ReplicaFaults::none`] is value-identical to the legacy path
    ///   (the fleet layer still routes fault-free runs through
    ///   [`ServeSim::run_sampled_with`] itself for byte-identity of the
    ///   event stream closure structure).
    /// * Prefill telemetry for an iteration is buffered and published
    ///   only when the iteration commits, so the event stream never
    ///   narrates work the dead chip didn't do. Arrival and admission
    ///   events stay inline — they are real history even when the chip
    ///   later dies.
    pub(crate) fn run_sampled_faulted(
        &self,
        costs: &ServiceTimeTable,
        trace: &Trace,
        faults: &ReplicaFaults,
    ) -> FaultedOutcome {
        let reqs = &trace.requests;
        let buffer = self.arch.global_buffer_bytes;
        let horizon = faults.horizon_s;

        let mut clock = 0.0f64;
        let mut busy = 0.0f64;
        let mut next = 0usize;
        let mut queue: VecDeque<usize> = VecDeque::new();
        let mut active: Vec<Active> = Vec::new();
        let mut resident_bytes = 0u64;
        let mut peak_resident_bytes = 0u64;
        let mut peak_batch = 0usize;
        let mut iterations = 0usize;

        let mut ttft = Vec::with_capacity(reqs.len());
        let mut e2e = Vec::with_capacity(reqs.len());
        let mut tpot = Vec::new();
        let mut completions: Vec<(usize, f64)> = Vec::with_capacity(reqs.len());
        let mut attributions: Vec<LatencyAttribution> = Vec::with_capacity(reqs.len());
        let mut completed = 0usize;
        let mut output_tokens = 0usize;
        let mut lost_active: Vec<usize> = Vec::new();
        let mut lost_waiting: Vec<usize> = Vec::new();
        let mut died = false;

        let unbounded = self.policy.is_unbounded();
        let ratio = self.policy.waiting_served_ratio;

        loop {
            while next < reqs.len() && reqs[next].arrival_s <= clock {
                let (at, req) = (reqs[next].arrival_s, reqs[next].id as u64);
                self.recorder.emit(|| Event::serve(at, ServeEvent::Arrive { req }));
                if !unbounded {
                    self.recorder.emit(|| Event::serve(at, ServeEvent::Enqueue { req }));
                }
                queue.push_back(next);
                next += 1;
            }
            if active.is_empty() && queue.is_empty() {
                if next >= reqs.len() {
                    break;
                }
                if reqs[next].arrival_s >= horizon {
                    // The chip dies before the next arrival; everything
                    // still to come was routed to a corpse.
                    died = true;
                    break;
                }
                clock = reqs[next].arrival_s;
                continue;
            }

            loop {
                let pos = match self.policy.queue_order {
                    QueueOrder::Fcfs => 0,
                    QueueOrder::ShortestPromptFirst => (0..queue.len())
                        .min_by_key(|&j| (reqs[queue[j]].prompt_tokens, queue[j]))
                        .unwrap_or(0),
                };
                let Some(&i) = queue.get(pos) else { break };
                let bytes = self.request_kv_bytes(reqs[i].prompt_tokens, reqs[i].output_tokens);
                if !active.is_empty() && resident_bytes + bytes > buffer {
                    break;
                }
                if ratio > 0.0
                    && !active.is_empty()
                    && (queue.len() as f64) < ratio * active.len() as f64
                {
                    break;
                }
                queue.remove(pos);
                let req = reqs[i].id as u64;
                if !unbounded {
                    self.recorder.emit(|| Event::serve(clock, ServeEvent::Dequeue { req }));
                }
                self.recorder.emit(|| Event::serve(clock, ServeEvent::Admit { req }));
                resident_bytes += bytes;
                active.push(Active {
                    idx: i,
                    prefilled: self.start_prefilled,
                    remaining: reqs[i].output_tokens.saturating_sub(1),
                    context: if self.start_prefilled {
                        reqs[i].prompt_tokens + 1
                    } else {
                        reqs[i].prompt_tokens
                    },
                    prefilled_tokens: if self.start_prefilled { reqs[i].prompt_tokens } else { 0 },
                    kv_bytes: bytes,
                    first_token_s: if self.start_prefilled { clock } else { 0.0 },
                    admit_s: clock,
                    prefill_busy_s: 0.0,
                    ttft_s: 0.0,
                });
            }
            peak_resident_bytes = peak_resident_bytes.max(resident_bytes);
            peak_batch = peak_batch.max(active.len());

            // One iteration under the degradation multipliers in force at
            // its start. Prefill is compute-bound (× compute), decode is
            // bandwidth-bound (× compute × dram).
            let (compute_mult, dram_mult) = faults.multipliers_at(clock);
            let mut step = 0.0f64;
            let mut chunk_budget = self.policy.chunk_tokens.unwrap_or(0);
            let mut granted: Vec<Option<usize>> = Vec::with_capacity(active.len());
            let mut charged: Vec<f64> = Vec::with_capacity(active.len());
            // Prefill narration held back until the iteration commits.
            let mut pending: Vec<Event> = Vec::new();
            let narrate = self.recorder.is_enabled();
            for a in &active {
                let mut cost = 0.0f64;
                let grant = if a.prefilled {
                    step += costs.decode_seconds(a.context) * compute_mult * dram_mult;
                    None
                } else if let Some(chunk) = self.policy.chunk_tokens {
                    let need = a.context - a.prefilled_tokens;
                    let want = need.min(chunk);
                    if need == 0 {
                        Some(0)
                    } else if want <= chunk_budget {
                        chunk_budget -= want;
                        let (req, context) = (reqs[a.idx].id as u64, a.context);
                        if narrate {
                            if a.prefilled_tokens == 0 {
                                pending.push(Event::serve(
                                    clock,
                                    ServeEvent::PrefillStart { req, context },
                                ));
                            }
                            let (tokens, remaining) = (want, need - want);
                            pending.push(Event::serve(
                                clock,
                                ServeEvent::PrefillChunk { req, tokens, remaining },
                            ));
                        }
                        cost = costs
                            .prefill_chunk_seconds(a.prefilled_tokens, a.prefilled_tokens + want)
                            * compute_mult;
                        step += cost;
                        Some(want)
                    } else {
                        None
                    }
                } else {
                    let (req, context) = (reqs[a.idx].id as u64, a.context);
                    if narrate {
                        pending
                            .push(Event::serve(clock, ServeEvent::PrefillStart { req, context }));
                    }
                    cost = costs.prefill_seconds(a.context) * compute_mult;
                    step += cost;
                    Some(a.context)
                };
                granted.push(grant);
                charged.push(cost);
            }
            if clock + step > horizon {
                // The chip fail-stops mid-iteration: nothing commits.
                died = true;
                break;
            }
            self.recorder.publish(pending);
            clock += step;
            busy += step;
            iterations += 1;
            let (batch, resident_kv, depth) = (active.len(), resident_bytes, queue.len());
            self.recorder
                .emit(|| Event::serve(clock, ServeEvent::DecodeIter { batch, resident_kv }));
            self.recorder.emit(|| Event::serve(clock, ServeEvent::QueueDepthSample { depth }));
            if !unbounded {
                self.recorder.emit(|| Event::serve(clock, ServeEvent::WaitingDepth { depth }));
            }

            for ((a, grant), &cost) in active.iter_mut().zip(&granted).zip(&charged) {
                if a.prefilled {
                    a.remaining = a.remaining.saturating_sub(1);
                    a.context += 1;
                    continue;
                }
                let Some(tokens) = *grant else { continue };
                a.prefill_busy_s += cost;
                a.prefilled_tokens += tokens;
                if a.prefilled_tokens >= reqs[a.idx].prompt_tokens {
                    a.prefilled = true;
                    a.first_token_s = clock;
                    a.context += 1;
                    let req = reqs[a.idx].id as u64;
                    self.recorder.emit(|| Event::serve(clock, ServeEvent::PrefillEnd { req }));
                    let t = clock - reqs[a.idx].arrival_s;
                    a.ttft_s = t;
                    ttft.push(t);
                }
            }
            let mut i = 0;
            while i < active.len() {
                if active[i].prefilled && active[i].remaining == 0 {
                    let a = active.remove(i);
                    let r = &reqs[a.idx];
                    let req = r.id as u64;
                    self.recorder.emit(|| Event::serve(clock, ServeEvent::Complete { req }));
                    resident_bytes -= a.kv_bytes;
                    completed += 1;
                    output_tokens += r.output_tokens;
                    completions.push((r.id, clock));
                    let e2e_s = clock - r.arrival_s;
                    e2e.push(e2e_s);
                    attributions.push(LatencyAttribution::from_run(
                        r.id,
                        r.arrival_s,
                        a.admit_s,
                        a.prefill_busy_s,
                        if self.start_prefilled { None } else { Some(a.ttft_s) },
                        e2e_s,
                    ));
                    if r.output_tokens > 1 {
                        tpot.push((clock - a.first_token_s) / (r.output_tokens - 1) as f64);
                    }
                } else {
                    i += 1;
                }
            }
        }

        if died {
            // Everything still on the chip loses its K/V state; everything
            // waiting (or not yet arrived but routed here) never ran.
            lost_active.extend(active.iter().map(|a| reqs[a.idx].id));
            lost_waiting.extend(queue.iter().map(|&i| reqs[i].id));
            lost_waiting.extend(reqs[next..].iter().map(|r| r.id));
        }

        let makespan = clock;
        let report = ServeReport {
            completed,
            output_tokens,
            iterations,
            makespan_s: makespan,
            busy_s: busy,
            goodput_rps: if makespan > 0.0 { completed as f64 / makespan } else { 0.0 },
            token_throughput_per_s: if makespan > 0.0 {
                output_tokens as f64 / makespan
            } else {
                0.0
            },
            utilization: if makespan > 0.0 { busy / makespan } else { 0.0 },
            peak_resident_bytes,
            peak_batch,
            buffer_bytes: buffer,
            ttft: LatencyStats::of(&mut ttft),
            tpot: LatencyStats::of(&mut tpot),
            e2e: LatencyStats::of(&mut e2e),
        };
        FaultedOutcome {
            report,
            samples: RunSamples { ttft, tpot, e2e, completions, attributions },
            lost_active,
            lost_waiting,
        }
    }
}

/// What a fault-aware replica run produced: the survivor's report and
/// samples, plus the trace request ids displaced by a fail-stop (empty
/// when the replica outlived its sub-trace).
#[derive(Debug, Clone)]
pub(crate) struct FaultedOutcome {
    /// The replica's report over the requests it actually served.
    pub report: ServeReport,
    /// Raw samples behind the report (completed requests only).
    pub samples: RunSamples,
    /// Requests resident (K/V lost) at the fail-stop instant.
    pub lost_active: Vec<usize>,
    /// Requests waiting or not yet arrived at the fail-stop instant.
    pub lost_waiting: Vec<usize>,
}

/// The raw per-request samples behind a [`ServeReport`]: what
/// [`LatencyStats`] summarized (sample vectors are returned sorted, as
/// the quantile pass left them) plus each request's completion time.
/// Fleet merges concatenate these across replicas and recompute exact
/// quantiles over the union.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunSamples {
    /// Time-to-first-token samples, one per prefilled request.
    pub ttft: Vec<f64>,
    /// Mean time-per-output-token samples, one per multi-token request.
    pub tpot: Vec<f64>,
    /// End-to-end latency samples, one per completed request.
    pub e2e: Vec<f64>,
    /// `(request id, completion time)` in retirement order.
    pub completions: Vec<(usize, f64)>,
    /// Per-request exact latency attributions, in retirement order.
    pub attributions: Vec<LatencyAttribution>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{Arrivals, LengthMix, TrafficSpec};

    fn bert_builder(kind: ConfigKind) -> ServeSimBuilder {
        ServeSim::builder(
            kind,
            kind.default_arch(),
            TransformerConfig::bert(),
            ModelParams::default(),
        )
    }

    fn bert_sim(kind: ConfigKind) -> ServeSim {
        bert_builder(kind).build()
    }

    #[test]
    fn try_build_rejects_invalid_policies_with_a_typed_error() {
        let zero_chunk = SchedulerPolicy { chunk_tokens: Some(0), ..SchedulerPolicy::default() };
        let err = bert_builder(ConfigKind::FuseMaxBinding).policy(zero_chunk).try_build();
        assert_eq!(err.unwrap_err(), fusemax_dse::SpecError::EmptyPrefillChunk);

        let bad_ratio =
            SchedulerPolicy { waiting_served_ratio: f64::NAN, ..SchedulerPolicy::default() };
        let err = bert_builder(ConfigKind::FuseMaxBinding).policy(bad_ratio).try_build();
        assert_eq!(err.unwrap_err(), fusemax_dse::SpecError::BadAdmissionRatio);

        assert!(bert_builder(ConfigKind::FuseMaxBinding)
            .policy(SchedulerPolicy::chunked(128))
            .try_build()
            .is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid serve configuration")]
    fn build_panics_on_an_invalid_policy() {
        let zero_chunk = SchedulerPolicy { chunk_tokens: Some(0), ..SchedulerPolicy::default() };
        let _ = bert_builder(ConfigKind::FuseMaxBinding).policy(zero_chunk).build();
    }

    fn small_trace(rate: f64, requests: usize) -> Trace {
        TrafficSpec {
            arrivals: Arrivals::Poisson { rate_per_s: rate },
            prompt_mix: LengthMix::new([(256, 3.0), (1024, 1.0)]),
            output_mix: LengthMix::uniform([4, 16]),
            requests,
        }
        .generate(11)
    }

    #[test]
    fn every_request_completes_exactly_once() {
        let report = bert_sim(ConfigKind::FuseMaxBinding).run(&small_trace(100.0, 60));
        assert_eq!(report.completed, 60);
        assert_eq!(report.ttft.samples, 60);
        assert_eq!(report.e2e.samples, 60);
        assert!(report.makespan_s > 0.0);
        assert!(report.utilization > 0.0 && report.utilization <= 1.0 + 1e-12);
    }

    #[test]
    fn replay_is_bit_identical() {
        let sim = bert_sim(ConfigKind::FuseMaxBinding);
        let trace = small_trace(200.0, 50);
        assert_eq!(sim.run(&trace), sim.run(&trace));
    }

    #[test]
    fn empty_traces_produce_empty_reports() {
        let report = bert_sim(ConfigKind::FuseMaxBinding).run(&Trace::default());
        assert_eq!(report.completed, 0);
        assert_eq!(report.makespan_s, 0.0);
        assert_eq!(report.goodput_rps, 0.0);
        assert_eq!(report.ttft.p99, 0.0);
    }

    #[test]
    fn batching_respects_the_buffer() {
        let report = bert_sim(ConfigKind::FuseMaxBinding).run(&small_trace(10_000.0, 80));
        // Every request here fits individually, so residency must never
        // exceed the buffer.
        assert!(report.peak_resident_bytes <= report.buffer_bytes);
        assert!(report.peak_batch >= 2, "heavy offered load must actually batch");
    }

    #[test]
    fn light_load_keeps_latency_near_service_time() {
        // One request at a time: TTFT equals the prefill service time.
        let trace = Trace {
            requests: vec![crate::traffic::Request {
                id: 0,
                arrival_s: 0.0,
                prompt_tokens: 512,
                output_tokens: 1,
            }],
        };
        let sim = bert_sim(ConfigKind::FuseMaxBinding);
        let report = sim.run(&trace);
        assert_eq!(report.completed, 1);
        assert_eq!(report.ttft.p50, report.makespan_s);
        assert_eq!(report.tpot.samples, 0, "single-token outputs have no decode phase");
    }

    #[test]
    fn faster_configurations_serve_with_lower_tail_latency() {
        let trace = small_trace(500.0, 40);
        let flat = bert_sim(ConfigKind::Flat).run(&trace);
        let fusemax = bert_sim(ConfigKind::FuseMaxBinding).run(&trace);
        assert!(
            fusemax.ttft.p99 < flat.ttft.p99,
            "+Binding p99 TTFT {} must beat FLAT {}",
            fusemax.ttft.p99,
            flat.ttft.p99
        );
        assert!(fusemax.goodput_rps >= flat.goodput_rps);
    }

    #[test]
    fn zero_output_hand_built_requests_complete_at_prefill() {
        // TrafficSpec clamps outputs to >= 1, but hand-built traces can
        // carry 0; the engine must treat that like 1, not underflow.
        let trace = Trace {
            requests: vec![crate::traffic::Request {
                id: 0,
                arrival_s: 0.0,
                prompt_tokens: 64,
                output_tokens: 0,
            }],
        };
        let report = bert_sim(ConfigKind::FuseMaxBinding).run(&trace);
        assert_eq!(report.completed, 1);
        assert_eq!(report.iterations, 1);
    }

    #[test]
    fn instrumented_runs_are_bit_identical_to_uninstrumented() {
        use fusemax_telemetry::VecSink;
        let trace = small_trace(300.0, 50);
        let plain = bert_sim(ConfigKind::FuseMaxBinding);
        let (recorder, sink) = VecSink::recorder();
        let traced = bert_builder(ConfigKind::FuseMaxBinding).recorder(recorder).build();
        assert_eq!(plain.run(&trace), traced.run(&trace));
        assert!(!sink.is_empty(), "instrumented run must actually emit events");
    }

    #[test]
    fn event_stream_replays_byte_identically() {
        use fusemax_telemetry::{event_json, VecSink};
        let trace = small_trace(300.0, 50);
        let render =
            |events: &[Event]| events.iter().map(event_json).collect::<Vec<_>>().join("\n");
        let (r1, s1) = VecSink::recorder();
        bert_builder(ConfigKind::FuseMaxBinding).recorder(r1).build().run(&trace);
        let (r2, s2) = VecSink::recorder();
        bert_builder(ConfigKind::FuseMaxBinding).recorder(r2).build().run(&trace);
        assert_eq!(render(&s1.events()), render(&s2.events()));
    }

    #[test]
    fn event_stream_is_request_conserving() {
        use fusemax_telemetry::VecSink;
        let trace = small_trace(500.0, 40);
        let (recorder, sink) = VecSink::recorder();
        let report =
            bert_builder(ConfigKind::FuseMaxBinding).recorder(recorder).build().run(&trace);
        let count = |pick: &dyn Fn(&ServeEvent) -> bool| {
            sink.events()
                .iter()
                .filter(|e| matches!(e, Event::Serve { kind, .. } if pick(kind)))
                .count()
        };
        let arrivals = count(&|k| matches!(k, ServeEvent::Arrive { .. }));
        let admissions = count(&|k| matches!(k, ServeEvent::Admit { .. }));
        let prefill_starts = count(&|k| matches!(k, ServeEvent::PrefillStart { .. }));
        let prefill_ends = count(&|k| matches!(k, ServeEvent::PrefillEnd { .. }));
        let completions = count(&|k| matches!(k, ServeEvent::Complete { .. }));
        let iterations = count(&|k| matches!(k, ServeEvent::DecodeIter { .. }));
        assert_eq!(arrivals, 40);
        assert_eq!(admissions, 40);
        assert_eq!(prefill_starts, 40);
        assert_eq!(prefill_ends, 40);
        assert_eq!(completions, report.completed);
        assert_eq!(iterations, report.iterations);
    }

    #[test]
    fn whole_prompt_chunks_reproduce_the_default_report_bit_for_bit() {
        // A chunk budget at least as large as every prompt degenerates to
        // whole-prompt prefill: every chunk covers [0, P), which charges
        // exactly `prefill_seconds(P)` — so the report (including float
        // bits) matches the default engine even though the event stream
        // gains PrefillChunk markers.
        let trace = small_trace(300.0, 50);
        let plain = bert_sim(ConfigKind::FuseMaxBinding);
        let chunked = bert_builder(ConfigKind::FuseMaxBinding)
            .policy(SchedulerPolicy::chunked(1 << 20))
            .build();
        assert_eq!(plain.run(&trace), chunked.run(&trace));
    }

    #[test]
    fn chunked_replays_complete_every_request_with_zero_table_misses() {
        let trace = small_trace(400.0, 60);
        let sim = bert_builder(ConfigKind::FuseMaxBinding)
            .policy(SchedulerPolicy::chunked(192).with_waiting_served_ratio(1.2))
            .build();
        let costs = sim.service_times(&trace);
        let report = sim.run_with(&costs, &trace);
        assert_eq!(report.completed, 60);
        assert_eq!(costs.misses(), 0, "policy-aware table must cover chunked replays");
        // Chunking splits prefill across iterations, so the engine runs
        // more of them than the whole-prompt scheduler.
        let whole = bert_sim(ConfigKind::FuseMaxBinding).run(&trace);
        assert!(report.iterations > whole.iterations);
    }

    #[test]
    fn chunked_policies_emit_chunk_and_queue_events() {
        use fusemax_telemetry::VecSink;
        let trace = small_trace(400.0, 40);
        let (recorder, sink) = VecSink::recorder();
        let report = bert_builder(ConfigKind::FuseMaxBinding)
            .policy(SchedulerPolicy::chunked(256))
            .recorder(recorder)
            .build()
            .run(&trace);
        let count = |pick: &dyn Fn(&ServeEvent) -> bool| {
            sink.events()
                .iter()
                .filter(|e| matches!(e, Event::Serve { kind, .. } if pick(kind)))
                .count()
        };
        // Still exactly one PrefillStart (and one PrefillEnd) per request;
        // the chunk stream carries the partial progress.
        assert_eq!(count(&|k| matches!(k, ServeEvent::PrefillStart { .. })), 40);
        assert_eq!(count(&|k| matches!(k, ServeEvent::PrefillEnd { .. })), 40);
        assert_eq!(count(&|k| matches!(k, ServeEvent::Enqueue { .. })), 40);
        assert_eq!(count(&|k| matches!(k, ServeEvent::Dequeue { .. })), 40);
        assert!(
            count(&|k| matches!(k, ServeEvent::PrefillChunk { .. })) > 40,
            "sub-prompt chunks must emit more chunk events than requests"
        );
        // Per-chunk tokens never exceed the budget, and per-iteration
        // chunk totals never exceed it either.
        let mut iter_total = 0usize;
        for e in sink.events() {
            match e {
                Event::Serve { kind: ServeEvent::PrefillChunk { tokens, .. }, .. } => {
                    assert!(tokens <= 256);
                    iter_total += tokens;
                    assert!(iter_total <= 256, "iteration chunk budget exceeded");
                }
                Event::Serve { kind: ServeEvent::DecodeIter { .. }, .. } => iter_total = 0,
                _ => {}
            }
        }
        assert_eq!(report.completed, 40);
    }

    #[test]
    fn shortest_prompt_first_prefers_short_prompts_under_contention() {
        // Two long prompts arrive just before a short one; under
        // contention SPF admits the short prompt ahead of the second
        // long one, cutting its TTFT.
        let mk = |id, at, prompt| crate::traffic::Request {
            id,
            arrival_s: at,
            prompt_tokens: prompt,
            output_tokens: 4,
        };
        let trace = Trace { requests: vec![mk(0, 0.0, 4096), mk(1, 0.0, 4096), mk(2, 0.0, 128)] };
        // Shrink the buffer so the three requests cannot all be resident.
        let mut arch = ConfigKind::FuseMaxBinding.default_arch();
        let bert = TransformerConfig::bert();
        let per_token = bert.kv_bytes_per_token(arch.word_bytes) / bert.layers as u64;
        arch.global_buffer_bytes = per_token * 4200;
        let sim = |order| {
            ServeSim::builder(
                ConfigKind::FuseMaxBinding,
                arch.clone(),
                bert.clone(),
                ModelParams::default(),
            )
            .policy(SchedulerPolicy::unbounded().with_queue_order(order))
        };
        use fusemax_telemetry::VecSink;
        let ttft_of = |order| {
            let (recorder, sink) = VecSink::recorder();
            sim(order).recorder(recorder).build().run(&trace);
            sink.events()
                .iter()
                .filter_map(|e| match e {
                    Event::Serve { t_s, kind: ServeEvent::PrefillEnd { req: 2 } } => Some(*t_s),
                    _ => None,
                })
                .next()
                .expect("request 2 must prefill")
        };
        let fcfs = ttft_of(QueueOrder::Fcfs);
        let spf = ttft_of(QueueOrder::ShortestPromptFirst);
        assert!(spf < fcfs, "SPF first token {spf} must beat FCFS {fcfs} for the short prompt");
    }

    #[test]
    fn waiting_served_ratio_delays_admission() {
        let trace = small_trace(2000.0, 40);
        let greedy = bert_sim(ConfigKind::FuseMaxBinding).run(&trace);
        use fusemax_telemetry::VecSink;
        let (recorder, sink) = VecSink::recorder();
        let gated = bert_builder(ConfigKind::FuseMaxBinding)
            .policy(SchedulerPolicy::unbounded().with_waiting_served_ratio(4.0))
            .recorder(recorder)
            .build()
            .run(&trace);
        // Everyone still completes; the ratio only re-times admissions.
        assert_eq!(gated.completed, greedy.completed);
        let waiting_samples = sink
            .events()
            .iter()
            .filter(|e| matches!(e, Event::Serve { kind: ServeEvent::WaitingDepth { .. }, .. }))
            .count();
        assert!(waiting_samples > 0, "non-default policies must sample waiting depth");
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_constructor_shims_match_the_builder() {
        let trace = small_trace(300.0, 30);
        let kind = ConfigKind::FuseMaxBinding;
        let shimmed = ServeSim::new(
            kind,
            kind.default_arch(),
            TransformerConfig::bert(),
            ModelParams::default(),
        )
        .with_policy(SchedulerPolicy::chunked(256));
        let built = bert_builder(kind).policy(SchedulerPolicy::chunked(256)).build();
        assert_eq!(shimmed.run(&trace), built.run(&trace));
    }

    #[test]
    fn sampled_runs_return_the_quantile_sample_multisets() {
        let trace = small_trace(300.0, 40);
        let sim = bert_sim(ConfigKind::FuseMaxBinding);
        let costs = sim.service_times(&trace);
        let (report, samples) = sim.run_sampled_with(&costs, &trace);
        assert_eq!(report, sim.run_with(&costs, &trace));
        assert_eq!(samples.e2e.len(), report.completed);
        assert_eq!(samples.completions.len(), report.completed);
        let mut e2e = samples.e2e.clone();
        assert_eq!(LatencyStats::of(&mut e2e), report.e2e);
        for &(id, done) in &samples.completions {
            let r = trace.requests.iter().find(|r| r.id == id).expect("completion id in trace");
            assert!(done >= r.arrival_s, "completion precedes arrival");
        }
    }

    #[test]
    fn decode_only_mode_skips_prefill_and_measures_decode_cadence() {
        use fusemax_telemetry::VecSink;
        let mk = |id, at, prompt, output| crate::traffic::Request {
            id,
            arrival_s: at,
            prompt_tokens: prompt,
            output_tokens: output,
        };
        let trace = Trace { requests: vec![mk(0, 0.0, 512, 8), mk(1, 0.01, 256, 4)] };
        let (recorder, sink) = VecSink::recorder();
        let sim = bert_sim(ConfigKind::FuseMaxBinding).fleet_replica(recorder, true);
        let costs = sim.service_times(&trace);
        let (report, samples) = sim.run_sampled_with(&costs, &trace);
        assert_eq!(report.completed, 2);
        assert_eq!(report.ttft.samples, 0, "decode chips never produce first tokens");
        assert_eq!(samples.tpot.len(), 2);
        let prefills = sink
            .events()
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    Event::Serve { kind: ServeEvent::PrefillStart { .. }, .. }
                        | Event::Serve { kind: ServeEvent::PrefillEnd { .. }, .. }
                )
            })
            .count();
        assert_eq!(prefills, 0, "decode-only streams carry no prefill events");
        // Each request decodes output - 1 tokens: 7 + 3 iterations'
        // worth of work, but batched iterations may overlap them.
        assert!(report.iterations >= 7);
    }

    #[test]
    fn fault_free_faulted_run_matches_the_legacy_engine() {
        let trace = small_trace(300.0, 50);
        let sim = bert_sim(ConfigKind::FuseMaxBinding);
        let costs = sim.service_times(&trace);
        let (report, samples) = sim.run_sampled_with(&costs, &trace);
        let outcome = sim.run_sampled_faulted(&costs, &trace, &ReplicaFaults::none());
        assert_eq!(outcome.report, report, "×1.0 multipliers must be bit-exact");
        assert_eq!(outcome.samples, samples);
        assert!(outcome.lost_active.is_empty() && outcome.lost_waiting.is_empty());
    }

    #[test]
    fn a_fail_stop_loses_residents_and_waiters_exactly_once() {
        let trace = small_trace(300.0, 50);
        let sim = bert_sim(ConfigKind::FuseMaxBinding);
        let costs = sim.service_times(&trace);
        let healthy = sim.run_sampled_faulted(&costs, &trace, &ReplicaFaults::none());
        let mid = healthy.report.makespan_s / 2.0;
        let faults = ReplicaFaults { horizon_s: mid, slowdowns: vec![(0.0, 1.0, 1.0)] };
        let outcome = sim.run_sampled_faulted(&costs, &trace, &faults);
        assert!(outcome.report.completed < 50, "a mid-trace death must lose requests");
        assert!(outcome.report.makespan_s <= mid, "no work commits past the fail-stop");
        // Conservation: completed + lost covers the trace exactly once.
        let mut ids: Vec<usize> = outcome.samples.completions.iter().map(|&(id, _)| id).collect();
        ids.extend(&outcome.lost_active);
        ids.extend(&outcome.lost_waiting);
        ids.sort_unstable();
        assert_eq!(ids, (0..50).collect::<Vec<_>>());
        // Replay is bit-identical.
        let again = sim.run_sampled_faulted(&costs, &trace, &faults);
        assert_eq!(again.report, outcome.report);
        assert_eq!(again.lost_active, outcome.lost_active);
        assert_eq!(again.lost_waiting, outcome.lost_waiting);
    }

    #[test]
    fn degradation_multipliers_slow_the_replica_down() {
        let trace = small_trace(300.0, 40);
        let sim = bert_sim(ConfigKind::FuseMaxBinding);
        let costs = sim.service_times(&trace);
        let healthy = sim.run_sampled_faulted(&costs, &trace, &ReplicaFaults::none());
        let throttled =
            ReplicaFaults { horizon_s: f64::INFINITY, slowdowns: vec![(0.0, 2.0, 1.0)] };
        let slow = sim.run_sampled_faulted(&costs, &trace, &throttled);
        assert_eq!(slow.report.completed, 40, "degraded chips still finish");
        assert!(slow.report.makespan_s > healthy.report.makespan_s);
        assert!(slow.report.busy_s > healthy.report.busy_s);
        let browned = ReplicaFaults { horizon_s: f64::INFINITY, slowdowns: vec![(0.0, 1.0, 4.0)] };
        let brown = sim.run_sampled_faulted(&costs, &trace, &browned);
        assert!(
            brown.report.busy_s > healthy.report.busy_s,
            "brownouts slow bandwidth-bound decode"
        );
        assert!(
            brown.report.busy_s < slow.report.busy_s * 4.0,
            "brownouts must not scale compute-bound prefill"
        );
    }

    #[test]
    fn dead_chips_do_not_narrate_uncommitted_prefill() {
        use fusemax_telemetry::VecSink;
        let trace = small_trace(300.0, 40);
        let (recorder, sink) = VecSink::recorder();
        let sim = bert_builder(ConfigKind::FuseMaxBinding).recorder(recorder).build();
        let costs = sim.service_times(&trace);
        let faults = ReplicaFaults { horizon_s: 0.05, slowdowns: vec![(0.0, 1.0, 1.0)] };
        let outcome = sim.run_sampled_faulted(&costs, &trace, &faults);
        let starts = sink
            .events()
            .iter()
            .filter(|e| matches!(e, Event::Serve { kind: ServeEvent::PrefillStart { .. }, .. }))
            .count();
        let ends = sink
            .events()
            .iter()
            .filter(|e| matches!(e, Event::Serve { kind: ServeEvent::PrefillEnd { .. }, .. }))
            .count();
        assert_eq!(starts, ends, "published prefill starts must all have committed");
        assert_eq!(ends, outcome.report.ttft.samples);
    }

    #[test]
    fn oversized_requests_still_run_alone() {
        // A prompt whose K/V exceeds the buffer must be admitted solo.
        let trace = Trace {
            requests: vec![
                crate::traffic::Request {
                    id: 0,
                    arrival_s: 0.0,
                    prompt_tokens: 1 << 13,
                    output_tokens: 2,
                },
                crate::traffic::Request {
                    id: 1,
                    arrival_s: 0.0,
                    prompt_tokens: 64,
                    output_tokens: 2,
                },
            ],
        };
        let sim = bert_sim(ConfigKind::FuseMaxBinding);
        let bert = TransformerConfig::bert();
        let kv = bert.kv_bytes_per_token(2) / bert.layers as u64 * (1 << 13);
        assert!(kv > sim.arch().global_buffer_bytes, "test premise: request exceeds buffer");
        let report = sim.run(&trace);
        assert_eq!(report.completed, 2);
    }
}
