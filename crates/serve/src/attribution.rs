//! Per-request latency attribution and SLA forensics: every recorded
//! TTFT and end-to-end latency decomposed into queue wait, prefill work,
//! decode-interleave stall, K/V handoff, and decode time — with the
//! decomposition folding **bit-exactly** back to the recorded latency
//! (the same [`fusemax_model::exact_split`] machinery the model-side
//! [`fusemax_model::CostNode`] trees use).
//!
//! The attribution is write-only instrumentation: the engine records the
//! admission clock and charged prefill seconds per request without
//! touching any float the report depends on, so instrumented and
//! uninstrumented replays stay bit-identical.

use fusemax_model::exact_split;

/// The five end-to-end latency buckets, in charge order.
pub const LATENCY_BUCKETS: [&str; 5] = ["queue_wait", "prefill", "stall", "kv_handoff", "decode"];

/// One request's exact latency decomposition.
///
/// Invariants (checked by [`LatencyAttribution::validate`], enforced by
/// proptests across scheduler policies, fleets, and disaggregated
/// topologies):
///
/// * `queue_wait_s + prefill_s + stall_s` left-folds to `ttft_s`
///   bit-exactly (when the request produced a first token);
/// * all five buckets left-fold to `e2e_s` bit-exactly.
///
/// Buckets are charged hierarchically in order: queue wait (arrival →
/// admission) first, then charged prefill seconds, with the stall bucket
/// absorbing the TTFT residual (iterations spent resident but serving
/// other requests' work — chunk starvation, co-batched decode); the
/// decode bucket absorbs the post-first-token residual. For
/// disaggregated fleets the decode bucket also absorbs the decode chip's
/// own queue wait.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyAttribution {
    /// Trace request id.
    pub req: usize,
    /// Arrival time, seconds.
    pub arrival_s: f64,
    /// Seconds from arrival to admission into the resident batch.
    pub queue_wait_s: f64,
    /// Charged prefill service seconds (whole-prompt or chunked).
    pub prefill_s: f64,
    /// Decode-interleave stall: resident time before the first token not
    /// spent on this request's own prefill.
    pub stall_s: f64,
    /// K/V-cache handoff wire seconds (disaggregated fleets only).
    pub kv_handoff_s: f64,
    /// Decode-phase seconds (everything after the first token).
    pub decode_s: f64,
    /// Recorded time-to-first-token; `None` on decode-only chips.
    pub ttft_s: Option<f64>,
    /// Recorded end-to-end latency.
    pub e2e_s: f64,
}

impl LatencyAttribution {
    /// Builds the attribution of one single-engine request from the
    /// engine's recorded clocks. `exact_split` charges queue wait then
    /// prefill against the TTFT (stall takes the residual), and the
    /// decode bucket takes the end-to-end residual past the TTFT.
    pub(crate) fn from_run(
        req: usize,
        arrival_s: f64,
        admit_s: f64,
        prefill_busy_s: f64,
        ttft_s: Option<f64>,
        e2e_s: f64,
    ) -> Self {
        let queue_nat = admit_s - arrival_s;
        match ttft_s {
            Some(t) => {
                let first = exact_split(t, &[queue_nat, prefill_busy_s]);
                let rest = exact_split(e2e_s, &[t]);
                LatencyAttribution {
                    req,
                    arrival_s,
                    queue_wait_s: first[0],
                    prefill_s: first[1],
                    stall_s: first[2],
                    kv_handoff_s: 0.0,
                    decode_s: rest[1],
                    ttft_s: Some(t),
                    e2e_s,
                }
            }
            None => {
                let split = exact_split(e2e_s, &[queue_nat]);
                LatencyAttribution {
                    req,
                    arrival_s,
                    queue_wait_s: split[0],
                    prefill_s: 0.0,
                    stall_s: 0.0,
                    kv_handoff_s: 0.0,
                    decode_s: split[1],
                    ttft_s: None,
                    e2e_s,
                }
            }
        }
    }

    /// Composes a disaggregated request's attribution: TTFT buckets from
    /// the prefill-stage attribution, the K/V wire charged explicitly,
    /// and the decode bucket absorbing the rest of `e2e_total_s`
    /// (including the decode chip's own queue wait).
    pub(crate) fn with_kv_handoff(
        prefill_stage: &LatencyAttribution,
        kv_seconds: f64,
        e2e_total_s: f64,
    ) -> Self {
        let t = prefill_stage.ttft_s.expect("prefill-stage attribution carries a TTFT");
        let split = exact_split(e2e_total_s, &[t, kv_seconds]);
        LatencyAttribution {
            kv_handoff_s: split[1],
            decode_s: split[2],
            e2e_s: e2e_total_s,
            ..prefill_stage.clone()
        }
    }

    /// The five end-to-end buckets, labeled, in charge order
    /// ([`LATENCY_BUCKETS`]).
    pub fn e2e_components(&self) -> [(&'static str, f64); 5] {
        [
            ("queue_wait", self.queue_wait_s),
            ("prefill", self.prefill_s),
            ("stall", self.stall_s),
            ("kv_handoff", self.kv_handoff_s),
            ("decode", self.decode_s),
        ]
    }

    /// The TTFT buckets (queue wait, prefill, stall), in charge order.
    pub fn ttft_components(&self) -> [(&'static str, f64); 3] {
        [("queue_wait", self.queue_wait_s), ("prefill", self.prefill_s), ("stall", self.stall_s)]
    }

    /// The bucket holding the largest share of end-to-end latency (ties
    /// go to the earliest bucket).
    pub fn dominant_bucket(&self) -> &'static str {
        let mut best = ("queue_wait", f64::NEG_INFINITY);
        for (label, value) in self.e2e_components() {
            if value > best.1 {
                best = (label, value);
            }
        }
        best.0
    }

    /// Checks both exact-sum invariants.
    pub fn validate(&self) -> Result<(), String> {
        let fold = |parts: &[f64]| parts.iter().fold(0.0f64, |acc, c| acc + c);
        if let Some(t) = self.ttft_s {
            let sum = fold(&[self.queue_wait_s, self.prefill_s, self.stall_s]);
            if sum.to_bits() != t.to_bits() {
                return Err(format!(
                    "req {}: ttft components fold to {sum:e}, recorded ttft is {t:e}",
                    self.req
                ));
            }
        }
        let sum = fold(&[
            self.queue_wait_s,
            self.prefill_s,
            self.stall_s,
            self.kv_handoff_s,
            self.decode_s,
        ]);
        if sum.to_bits() != self.e2e_s.to_bits() {
            return Err(format!(
                "req {}: e2e components fold to {sum:e}, recorded e2e is {:e}",
                self.req, self.e2e_s
            ));
        }
        Ok(())
    }
}

/// One p99 violator with its dominant latency bucket named.
#[derive(Debug, Clone, PartialEq)]
pub struct SlaViolation {
    /// Trace request id.
    pub req: usize,
    /// The violating TTFT, seconds.
    pub ttft_s: f64,
    /// The bucket holding the largest share of the TTFT.
    pub dominant: &'static str,
    /// Seconds in the dominant bucket.
    pub dominant_s: f64,
}

/// The SLA-forensics report: every request over the TTFT threshold,
/// worst first, with its dominant latency bucket named — so a p99 miss
/// is attributable (queue wait vs. prefill vs. interleave stall) instead
/// of being a bare quantile.
#[derive(Debug, Clone, PartialEq)]
pub struct SlaForensics {
    /// The TTFT threshold applied, seconds.
    pub threshold_s: f64,
    /// Violators, sorted by TTFT descending (ties by request id).
    pub violators: Vec<SlaViolation>,
}

impl SlaForensics {
    /// Names the dominant TTFT bucket for every attribution whose TTFT
    /// exceeds `threshold_s` (pass a recorded p99 or an SLA bound).
    pub fn over_ttft(attributions: &[LatencyAttribution], threshold_s: f64) -> Self {
        let mut violators: Vec<SlaViolation> = attributions
            .iter()
            .filter_map(|a| {
                let t = a.ttft_s?;
                if t <= threshold_s {
                    return None;
                }
                let (dominant, dominant_s) = a.ttft_components().into_iter().fold(
                    ("queue_wait", f64::NEG_INFINITY),
                    |best, (label, value)| {
                        if value > best.1 {
                            (label, value)
                        } else {
                            best
                        }
                    },
                );
                Some(SlaViolation { req: a.req, ttft_s: t, dominant, dominant_s })
            })
            .collect();
        violators.sort_by(|a, b| b.ttft_s.total_cmp(&a.ttft_s).then(a.req.cmp(&b.req)));
        SlaForensics { threshold_s, violators }
    }

    /// A deterministic plain-text rendering, one line per violator.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{} violator(s) over ttft threshold {:.6}s\n",
            self.violators.len(),
            self.threshold_s
        );
        for v in &self.violators {
            out.push_str(&format!(
                "req {:>4}  ttft {:.6}s  dominant {} ({:.6}s, {:.0}%)\n",
                v.req,
                v.ttft_s,
                v.dominant,
                v.dominant_s,
                if v.ttft_s > 0.0 { 100.0 * v.dominant_s / v.ttft_s } else { 0.0 }
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_run_is_exact_and_charges_in_order() {
        let a = LatencyAttribution::from_run(3, 1.0, 1.25, 0.5, Some(0.9), 2.1);
        a.validate().unwrap();
        assert_eq!(a.queue_wait_s, 0.25);
        assert_eq!(a.prefill_s, 0.5);
        assert!(a.stall_s >= 0.0);
        assert_eq!(a.kv_handoff_s, 0.0);
        assert_eq!(a.ttft_s, Some(0.9));
        assert_eq!(a.e2e_s, 2.1);
    }

    #[test]
    fn decode_only_runs_have_no_ttft_buckets() {
        let a = LatencyAttribution::from_run(0, 0.5, 0.75, 0.0, None, 1.5);
        a.validate().unwrap();
        assert_eq!(a.ttft_s, None);
        assert_eq!(a.prefill_s, 0.0);
        assert_eq!(a.stall_s, 0.0);
        assert!(a.decode_s > 0.0);
    }

    #[test]
    fn kv_handoff_composition_preserves_ttft_buckets() {
        let prefill = LatencyAttribution::from_run(7, 0.0, 0.1, 0.3, Some(0.45), 0.45);
        let full = LatencyAttribution::with_kv_handoff(&prefill, 0.02, 1.0);
        full.validate().unwrap();
        assert_eq!(full.queue_wait_s, prefill.queue_wait_s);
        assert_eq!(full.prefill_s, prefill.prefill_s);
        assert_eq!(full.stall_s, prefill.stall_s);
        assert!(full.kv_handoff_s > 0.0);
        assert_eq!(full.e2e_s, 1.0);
    }

    #[test]
    fn forensics_names_the_dominant_bucket_worst_first() {
        let mk = |req, queue, prefill, out| {
            LatencyAttribution::from_run(req, 0.0, queue, prefill, Some(queue + prefill), out)
        };
        let attrs = vec![mk(0, 0.01, 0.02, 0.05), mk(1, 0.5, 0.1, 0.7), mk(2, 0.05, 0.4, 0.5)];
        let forensics = SlaForensics::over_ttft(&attrs, 0.1);
        assert_eq!(forensics.violators.len(), 2);
        assert_eq!(forensics.violators[0].req, 1);
        assert_eq!(forensics.violators[0].dominant, "queue_wait");
        assert_eq!(forensics.violators[1].req, 2);
        assert_eq!(forensics.violators[1].dominant, "prefill");
        let text = forensics.render();
        assert!(text.contains("2 violator(s)"));
        assert!(text.lines().count() == 3);
    }
}
