//! Per-request latency attribution and SLA forensics: every recorded
//! TTFT and end-to-end latency decomposed into retry overhead (backoff
//! and lost work after replica failures), queue wait, prefill work,
//! decode-interleave stall, K/V handoff, and decode time — with the
//! decomposition folding **bit-exactly** back to the recorded latency
//! (the same [`fusemax_model::exact_split`] machinery the model-side
//! [`fusemax_model::CostNode`] trees use).
//!
//! The attribution is write-only instrumentation: the engine records the
//! admission clock and charged prefill seconds per request without
//! touching any float the report depends on, so instrumented and
//! uninstrumented replays stay bit-identical.

use fusemax_model::exact_split;

/// The six end-to-end latency buckets, in charge order. The `retry`
/// bucket (first — it is charged before everything else a surviving
/// attempt experiences) holds backoff wait plus lost work from replica
/// failures; it is exactly 0.0 in fault-free runs, so legacy folds are
/// unchanged bit-for-bit.
pub const LATENCY_BUCKETS: [&str; 6] =
    ["retry", "queue_wait", "prefill", "stall", "kv_handoff", "decode"];

/// One request's exact latency decomposition.
///
/// Invariants (checked by [`LatencyAttribution::validate`], enforced by
/// proptests across scheduler policies, fleets, and disaggregated
/// topologies):
///
/// * `retry_s + queue_wait_s + prefill_s + stall_s` left-folds to
///   `ttft_s` bit-exactly (when the request produced a first token);
/// * all six buckets left-fold to `e2e_s` bit-exactly.
///
/// Buckets are charged hierarchically in order: retry overhead (backoff
/// wait plus work lost to replica failures; 0.0 in fault-free runs)
/// first, then queue wait (arrival → admission), then charged prefill
/// seconds, with the stall bucket absorbing the TTFT residual
/// (iterations spent resident but serving other requests' work — chunk
/// starvation, co-batched decode); the decode bucket absorbs the
/// post-first-token residual. For disaggregated fleets the decode bucket
/// also absorbs the decode chip's own queue wait.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyAttribution {
    /// Trace request id.
    pub req: usize,
    /// Arrival time, seconds.
    pub arrival_s: f64,
    /// Retry overhead: backoff wait and re-prefilled work charged to
    /// replica failures (exactly 0.0 when the request never retried).
    pub retry_s: f64,
    /// Seconds from arrival to admission into the resident batch.
    pub queue_wait_s: f64,
    /// Charged prefill service seconds (whole-prompt or chunked).
    pub prefill_s: f64,
    /// Decode-interleave stall: resident time before the first token not
    /// spent on this request's own prefill.
    pub stall_s: f64,
    /// K/V-cache handoff wire seconds (disaggregated fleets only).
    pub kv_handoff_s: f64,
    /// Decode-phase seconds (everything after the first token).
    pub decode_s: f64,
    /// Recorded time-to-first-token; `None` on decode-only chips.
    pub ttft_s: Option<f64>,
    /// Recorded end-to-end latency.
    pub e2e_s: f64,
}

impl LatencyAttribution {
    /// Builds the attribution of one single-engine request from the
    /// engine's recorded clocks. `exact_split` charges queue wait then
    /// prefill against the TTFT (stall takes the residual), and the
    /// decode bucket takes the end-to-end residual past the TTFT.
    pub(crate) fn from_run(
        req: usize,
        arrival_s: f64,
        admit_s: f64,
        prefill_busy_s: f64,
        ttft_s: Option<f64>,
        e2e_s: f64,
    ) -> Self {
        let queue_nat = admit_s - arrival_s;
        match ttft_s {
            Some(t) => {
                let first = exact_split(t, &[queue_nat, prefill_busy_s]);
                let rest = exact_split(e2e_s, &[t]);
                LatencyAttribution {
                    req,
                    arrival_s,
                    retry_s: 0.0,
                    queue_wait_s: first[0],
                    prefill_s: first[1],
                    stall_s: first[2],
                    kv_handoff_s: 0.0,
                    decode_s: rest[1],
                    ttft_s: Some(t),
                    e2e_s,
                }
            }
            None => {
                let split = exact_split(e2e_s, &[queue_nat]);
                LatencyAttribution {
                    req,
                    arrival_s,
                    retry_s: 0.0,
                    queue_wait_s: split[0],
                    prefill_s: 0.0,
                    stall_s: 0.0,
                    kv_handoff_s: 0.0,
                    decode_s: split[1],
                    ttft_s: None,
                    e2e_s,
                }
            }
        }
    }

    /// Composes a disaggregated request's attribution: TTFT buckets from
    /// the prefill-stage attribution, the K/V wire charged explicitly,
    /// and the decode bucket absorbing the rest of `e2e_total_s`
    /// (including the decode chip's own queue wait).
    pub(crate) fn with_kv_handoff(
        prefill_stage: &LatencyAttribution,
        kv_seconds: f64,
        e2e_total_s: f64,
    ) -> Self {
        let t = prefill_stage.ttft_s.expect("prefill-stage attribution carries a TTFT");
        let split = exact_split(e2e_total_s, &[t, kv_seconds]);
        LatencyAttribution {
            kv_handoff_s: split[1],
            decode_s: split[2],
            e2e_s: e2e_total_s,
            ..prefill_stage.clone()
        }
    }

    /// Re-times a surviving attempt's attribution against the request's
    /// *original* arrival: the backoff wait and lost-attempt time become
    /// the named `retry` bucket instead of silently inflating
    /// `queue_wait`, and the folds stay bit-exact against the true
    /// end-to-end latency (`e2e_total_s`, measured from the original
    /// arrival).
    ///
    /// Construction (relying only on [`exact_split`]'s hard guarantees —
    /// the full fold always equals the total, and the *first* natural is
    /// preserved verbatim when it does not exceed the total):
    ///
    /// 1. the true TTFT is the retry overhead plus the surviving
    ///    attempt's TTFT, clamped to `e2e_total_s`;
    /// 2. the TTFT is split over `[retry, queue, prefill]` naturals, so
    ///    the four TTFT buckets fold to it bit-exactly;
    /// 3. `e2e_total_s` is split over `[true_ttft, kv]`, whose first part
    ///    returns `true_ttft` verbatim — so the six-bucket left fold
    ///    collapses to `(true_ttft + kv) + decode = e2e_total_s`.
    pub(crate) fn with_retry(
        base: &LatencyAttribution,
        retry_wait_s: f64,
        orig_arrival_s: f64,
        e2e_total_s: f64,
    ) -> Self {
        let retry_nat = retry_wait_s.max(0.0);
        match base.ttft_s {
            Some(t) => {
                let true_ttft = (retry_nat + t).min(e2e_total_s);
                let first = exact_split(true_ttft, &[retry_nat, base.queue_wait_s, base.prefill_s]);
                let rest = exact_split(e2e_total_s, &[true_ttft, base.kv_handoff_s]);
                LatencyAttribution {
                    req: base.req,
                    arrival_s: orig_arrival_s,
                    retry_s: first[0],
                    queue_wait_s: first[1],
                    prefill_s: first[2],
                    stall_s: first[3],
                    kv_handoff_s: rest[1],
                    decode_s: rest[2],
                    ttft_s: Some(true_ttft),
                    e2e_s: e2e_total_s,
                }
            }
            None => {
                let split =
                    exact_split(e2e_total_s, &[retry_nat, base.queue_wait_s, base.kv_handoff_s]);
                LatencyAttribution {
                    req: base.req,
                    arrival_s: orig_arrival_s,
                    retry_s: split[0],
                    queue_wait_s: split[1],
                    prefill_s: 0.0,
                    stall_s: 0.0,
                    kv_handoff_s: split[2],
                    decode_s: split[3],
                    ttft_s: None,
                    e2e_s: e2e_total_s,
                }
            }
        }
    }

    /// The six end-to-end buckets, labeled, in charge order
    /// ([`LATENCY_BUCKETS`]).
    pub fn e2e_components(&self) -> [(&'static str, f64); 6] {
        [
            ("retry", self.retry_s),
            ("queue_wait", self.queue_wait_s),
            ("prefill", self.prefill_s),
            ("stall", self.stall_s),
            ("kv_handoff", self.kv_handoff_s),
            ("decode", self.decode_s),
        ]
    }

    /// The TTFT buckets (retry, queue wait, prefill, stall), in charge
    /// order.
    pub fn ttft_components(&self) -> [(&'static str, f64); 4] {
        [
            ("retry", self.retry_s),
            ("queue_wait", self.queue_wait_s),
            ("prefill", self.prefill_s),
            ("stall", self.stall_s),
        ]
    }

    /// The bucket holding the largest share of end-to-end latency (ties
    /// go to the earliest bucket).
    pub fn dominant_bucket(&self) -> &'static str {
        let mut best = ("queue_wait", f64::NEG_INFINITY);
        for (label, value) in self.e2e_components() {
            if value > best.1 {
                best = (label, value);
            }
        }
        best.0
    }

    /// Checks both exact-sum invariants.
    pub fn validate(&self) -> Result<(), String> {
        let fold = |parts: &[f64]| parts.iter().fold(0.0f64, |acc, c| acc + c);
        if let Some(t) = self.ttft_s {
            let sum = fold(&[self.retry_s, self.queue_wait_s, self.prefill_s, self.stall_s]);
            if sum.to_bits() != t.to_bits() {
                return Err(format!(
                    "req {}: ttft components fold to {sum:e}, recorded ttft is {t:e}",
                    self.req
                ));
            }
        }
        let sum = fold(&[
            self.retry_s,
            self.queue_wait_s,
            self.prefill_s,
            self.stall_s,
            self.kv_handoff_s,
            self.decode_s,
        ]);
        if sum.to_bits() != self.e2e_s.to_bits() {
            return Err(format!(
                "req {}: e2e components fold to {sum:e}, recorded e2e is {:e}",
                self.req, self.e2e_s
            ));
        }
        Ok(())
    }
}

/// One p99 violator with its dominant latency bucket named.
#[derive(Debug, Clone, PartialEq)]
pub struct SlaViolation {
    /// Trace request id.
    pub req: usize,
    /// The violating TTFT, seconds.
    pub ttft_s: f64,
    /// The bucket holding the largest share of the TTFT.
    pub dominant: &'static str,
    /// Seconds in the dominant bucket.
    pub dominant_s: f64,
}

/// The SLA-forensics report: every request over the TTFT threshold,
/// worst first, with its dominant latency bucket named — so a p99 miss
/// is attributable (queue wait vs. prefill vs. interleave stall) instead
/// of being a bare quantile.
#[derive(Debug, Clone, PartialEq)]
pub struct SlaForensics {
    /// The TTFT threshold applied, seconds.
    pub threshold_s: f64,
    /// Violators, sorted by TTFT descending (ties by request id).
    pub violators: Vec<SlaViolation>,
}

impl SlaForensics {
    /// Names the dominant TTFT bucket for every attribution whose TTFT
    /// exceeds `threshold_s` (pass a recorded p99 or an SLA bound).
    pub fn over_ttft(attributions: &[LatencyAttribution], threshold_s: f64) -> Self {
        let mut violators: Vec<SlaViolation> = attributions
            .iter()
            .filter_map(|a| {
                let t = a.ttft_s?;
                if t <= threshold_s {
                    return None;
                }
                let (dominant, dominant_s) = a.ttft_components().into_iter().fold(
                    ("queue_wait", f64::NEG_INFINITY),
                    |best, (label, value)| {
                        if value > best.1 {
                            (label, value)
                        } else {
                            best
                        }
                    },
                );
                Some(SlaViolation { req: a.req, ttft_s: t, dominant, dominant_s })
            })
            .collect();
        violators.sort_by(|a, b| b.ttft_s.total_cmp(&a.ttft_s).then(a.req.cmp(&b.req)));
        SlaForensics { threshold_s, violators }
    }

    /// A deterministic plain-text rendering, one line per violator.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{} violator(s) over ttft threshold {:.6}s\n",
            self.violators.len(),
            self.threshold_s
        );
        for v in &self.violators {
            out.push_str(&format!(
                "req {:>4}  ttft {:.6}s  dominant {} ({:.6}s, {:.0}%)\n",
                v.req,
                v.ttft_s,
                v.dominant,
                v.dominant_s,
                if v.ttft_s > 0.0 { 100.0 * v.dominant_s / v.ttft_s } else { 0.0 }
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_run_is_exact_and_charges_in_order() {
        let a = LatencyAttribution::from_run(3, 1.0, 1.25, 0.5, Some(0.9), 2.1);
        a.validate().unwrap();
        assert_eq!(a.queue_wait_s, 0.25);
        assert_eq!(a.prefill_s, 0.5);
        assert!(a.stall_s >= 0.0);
        assert_eq!(a.kv_handoff_s, 0.0);
        assert_eq!(a.ttft_s, Some(0.9));
        assert_eq!(a.e2e_s, 2.1);
    }

    #[test]
    fn decode_only_runs_have_no_ttft_buckets() {
        let a = LatencyAttribution::from_run(0, 0.5, 0.75, 0.0, None, 1.5);
        a.validate().unwrap();
        assert_eq!(a.ttft_s, None);
        assert_eq!(a.prefill_s, 0.0);
        assert_eq!(a.stall_s, 0.0);
        assert!(a.decode_s > 0.0);
    }

    #[test]
    fn kv_handoff_composition_preserves_ttft_buckets() {
        let prefill = LatencyAttribution::from_run(7, 0.0, 0.1, 0.3, Some(0.45), 0.45);
        let full = LatencyAttribution::with_kv_handoff(&prefill, 0.02, 1.0);
        full.validate().unwrap();
        assert_eq!(full.queue_wait_s, prefill.queue_wait_s);
        assert_eq!(full.prefill_s, prefill.prefill_s);
        assert_eq!(full.stall_s, prefill.stall_s);
        assert!(full.kv_handoff_s > 0.0);
        assert_eq!(full.e2e_s, 1.0);
    }

    #[test]
    fn with_retry_folds_bit_exactly_and_names_the_retry_bucket() {
        // The surviving attempt: arrived (re-admitted) at 2.0, queued
        // 0.25s, prefilled 0.5s, first token at attempt-relative 0.9s.
        let base = LatencyAttribution::from_run(3, 2.0, 2.25, 0.5, Some(0.9), 2.1);
        // Original arrival 0.3, so the retry overhead (backoff + lost
        // first attempt) is 1.7s and the true e2e is 2.1 + 1.7 = 3.8s.
        let full = LatencyAttribution::with_retry(&base, 1.7, 0.3, 1.7 + 2.1);
        full.validate().unwrap();
        assert_eq!(full.req, 3);
        assert_eq!(full.arrival_s, 0.3);
        assert_eq!(full.retry_s, 1.7, "retry is the first natural: preserved verbatim");
        assert_eq!(full.ttft_s, Some(1.7 + 0.9));
        assert_eq!(full.e2e_s, 1.7 + 2.1);
        assert_eq!(full.dominant_bucket(), "retry");
        // Decode-only base (no TTFT): retry still charges first.
        let decode_only = LatencyAttribution::from_run(4, 1.0, 1.5, 0.0, None, 2.0);
        let retried = LatencyAttribution::with_retry(&decode_only, 0.4, 0.5, 2.5);
        retried.validate().unwrap();
        assert_eq!(retried.retry_s, 0.4);
        assert_eq!(retried.ttft_s, None);
    }

    #[test]
    fn fault_free_attributions_carry_a_zero_retry_bucket() {
        let a = LatencyAttribution::from_run(1, 0.0, 0.1, 0.2, Some(0.5), 1.0);
        assert_eq!(a.retry_s, 0.0);
        assert_eq!(a.e2e_components()[0], ("retry", 0.0));
        assert_eq!(a.ttft_components()[0], ("retry", 0.0));
        assert_eq!(LATENCY_BUCKETS[0], "retry");
        a.validate().unwrap();
    }

    #[test]
    fn forensics_names_the_dominant_bucket_worst_first() {
        let mk = |req, queue, prefill, out| {
            LatencyAttribution::from_run(req, 0.0, queue, prefill, Some(queue + prefill), out)
        };
        let attrs = vec![mk(0, 0.01, 0.02, 0.05), mk(1, 0.5, 0.1, 0.7), mk(2, 0.05, 0.4, 0.5)];
        let forensics = SlaForensics::over_ttft(&attrs, 0.1);
        assert_eq!(forensics.violators.len(), 2);
        assert_eq!(forensics.violators[0].req, 1);
        assert_eq!(forensics.violators[0].dominant, "queue_wait");
        assert_eq!(forensics.violators[1].req, 2);
        assert_eq!(forensics.violators[1].dominant, "prefill");
        let text = forensics.render();
        assert!(text.contains("2 violator(s)"));
        assert!(text.lines().count() == 3);
    }
}
