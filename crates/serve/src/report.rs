//! What a serving run reports: throughput, utilization, and exact
//! latency distributions.

use std::fmt;

/// Exact latency statistics over a sample set: nearest-rank quantiles on
/// the sorted samples (no interpolation, no sketching), so two identical
/// runs report bit-identical values.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencyStats {
    /// Number of samples the statistics summarize.
    pub samples: usize,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Median (nearest-rank).
    pub p50: f64,
    /// 95th percentile (nearest-rank).
    pub p95: f64,
    /// 99th percentile (nearest-rank).
    pub p99: f64,
    /// Maximum sample.
    pub max: f64,
}

impl LatencyStats {
    /// Summarizes `samples` (sorted in place). Empty input yields the
    /// all-zero statistics.
    pub fn of(samples: &mut [f64]) -> Self {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        samples.sort_by(f64::total_cmp);
        let n = samples.len();
        let q = |p: f64| samples[((p * n as f64).ceil() as usize).clamp(1, n) - 1];
        LatencyStats {
            samples: n,
            mean: samples.iter().sum::<f64>() / n as f64,
            p50: q(0.50),
            p95: q(0.95),
            p99: q(0.99),
            max: samples[n - 1],
        }
    }
}

impl fmt::Display for LatencyStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "p50={:.3}s p95={:.3}s p99={:.3}s max={:.3}s (n={})",
            self.p50, self.p95, self.p99, self.max, self.samples
        )
    }
}

/// Fault-handling counters for one fleet run: how many retries fired,
/// how many requests were shed, and the resulting availability. The
/// [`Default`] value (`availability = 1.0`, no retries, no sheds) is
/// what every fault-free run reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultStats {
    /// Retry attempts dispatched (re-admissions after a replica failure).
    pub retries: usize,
    /// Requests shed — dropped after exhausting the retry budget or by
    /// the load-shedding watermark.
    pub shed: usize,
    /// `completed / (completed + shed)`; 1.0 when nothing was offered.
    pub availability: f64,
}

impl Default for FaultStats {
    fn default() -> Self {
        FaultStats { retries: 0, shed: 0, availability: 1.0 }
    }
}

impl FaultStats {
    /// Computes availability from completion and shed counts.
    pub fn of(completed: usize, retries: usize, shed: usize) -> Self {
        let offered = completed + shed;
        FaultStats {
            retries,
            shed,
            availability: if offered == 0 { 1.0 } else { completed as f64 / offered as f64 },
        }
    }
}

impl fmt::Display for FaultStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "retries={} shed={} availability={:.1}%",
            self.retries,
            self.shed,
            100.0 * self.availability
        )
    }
}

/// The outcome of serving one [`crate::Trace`] on one design point.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Requests served to completion (every trace request, by
    /// construction — the engine never drops work).
    pub completed: usize,
    /// Output tokens generated.
    pub output_tokens: usize,
    /// Engine iterations executed.
    pub iterations: usize,
    /// Wall-clock seconds from trace start to the last completion.
    pub makespan_s: f64,
    /// Seconds the accelerator spent executing (the rest is idle waiting
    /// for arrivals).
    pub busy_s: f64,
    /// Completed requests per second of makespan.
    pub goodput_rps: f64,
    /// Output tokens per second of makespan.
    pub token_throughput_per_s: f64,
    /// `busy_s / makespan_s`.
    pub utilization: f64,
    /// Peak bytes of per-layer K/V state resident in the global buffer.
    pub peak_resident_bytes: u64,
    /// Peak number of simultaneously resident requests.
    pub peak_batch: usize,
    /// The design's global-buffer capacity (the admission bound).
    pub buffer_bytes: u64,
    /// Time-to-first-token distribution (arrival → first output token).
    pub ttft: LatencyStats,
    /// Per-output-token decode latency distribution (requests with a
    /// single output token have no decode phase and contribute no
    /// sample).
    pub tpot: LatencyStats,
    /// End-to-end request latency distribution (arrival → completion).
    pub e2e: LatencyStats,
}

impl fmt::Display for ServeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "served {} requests ({} tokens) in {:.3}s: {:.1} req/s, {:.0} tok/s, util {:.0}%",
            self.completed,
            self.output_tokens,
            self.makespan_s,
            self.goodput_rps,
            self.token_throughput_per_s,
            100.0 * self.utilization,
        )?;
        writeln!(f, "  TTFT {}", self.ttft)?;
        writeln!(f, "  TPOT {}", self.tpot)?;
        write!(
            f,
            "  E2E  {} | peak batch {} ({:.1} MB of {:.1} MB buffer)",
            self.e2e,
            self.peak_batch,
            self.peak_resident_bytes as f64 / (1 << 20) as f64,
            self.buffer_bytes as f64 / (1 << 20) as f64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_are_nearest_rank_exact() {
        let mut samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let stats = LatencyStats::of(&mut samples);
        assert_eq!(stats.p50, 50.0);
        assert_eq!(stats.p95, 95.0);
        assert_eq!(stats.p99, 99.0);
        assert_eq!(stats.max, 100.0);
        assert_eq!(stats.mean, 50.5);
        assert_eq!(stats.samples, 100);
    }

    #[test]
    fn small_samples_clamp_sanely() {
        let mut one = vec![3.5];
        let stats = LatencyStats::of(&mut one);
        assert_eq!(stats.p50, 3.5);
        assert_eq!(stats.p99, 3.5);
        assert_eq!(stats.max, 3.5);

        let empty = LatencyStats::of(&mut []);
        assert_eq!(empty.samples, 0);
        assert_eq!(empty.p99, 0.0);
    }

    #[test]
    fn unsorted_input_is_sorted_first() {
        let mut samples = vec![5.0, 1.0, 4.0, 2.0, 3.0];
        let stats = LatencyStats::of(&mut samples);
        assert_eq!(stats.p50, 3.0);
        assert_eq!(stats.max, 5.0);
    }

    #[test]
    fn display_is_human_readable() {
        let mut samples = vec![0.25, 0.5];
        let text = LatencyStats::of(&mut samples).to_string();
        assert!(text.contains("p99=0.500s"), "{text}");
    }

    #[test]
    fn fault_stats_default_is_fully_available() {
        let clean = FaultStats::default();
        assert_eq!(clean.availability, 1.0);
        assert_eq!(clean, FaultStats::of(0, 0, 0));
        let hit = FaultStats::of(75, 10, 25);
        assert_eq!(hit.availability, 0.75);
        assert_eq!(hit.to_string(), "retries=10 shed=25 availability=75.0%");
    }
}
