//! Simulator configuration.

/// Parameters of the simulated spatial array.
///
/// The 2D array is `rows × cols` with the FuseMax mapping `M0 = rows`,
/// `P0 = cols`; the 1D array has `vector_pes` lanes. Exponentials occupy a
/// PE for `1 + exp_maccs` cycles (subtract, then the MACC chain).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpatialConfig {
    /// 2D array rows (`M0`).
    pub rows: usize,
    /// 2D array columns (`P0`).
    pub cols: usize,
    /// 1D array lanes.
    pub vector_pes: usize,
    /// MACCs per exponential (the paper uses 6).
    pub exp_maccs: u32,
    /// Fill/drain cycles charged per serialized tile (`rows + cols` when
    /// `true`, matching the systolic array's skew).
    pub charge_fill_drain: bool,
}

impl SpatialConfig {
    /// A toy array for tests and traces: `rows × cols` 2D PEs, `cols` 1D
    /// lanes, 6-MACC exponentials, fills/drains charged.
    pub fn toy(rows: usize, cols: usize) -> Self {
        Self { rows, cols, vector_pes: cols, exp_maccs: 6, charge_fill_drain: true }
    }

    /// The paper's cloud array (256×256, 256 lanes).
    pub fn cloud() -> Self {
        Self::toy(256, 256)
    }

    /// Cycles one exponential occupies a PE.
    pub fn exp_cycles(&self) -> u64 {
        1 + self.exp_maccs as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toy_and_cloud() {
        let t = SpatialConfig::toy(4, 8);
        assert_eq!(t.rows, 4);
        assert_eq!(t.vector_pes, 8);
        assert_eq!(t.exp_cycles(), 7);
        let c = SpatialConfig::cloud();
        assert_eq!(c.rows, 256);
        assert_eq!(c.cols, 256);
    }
}
