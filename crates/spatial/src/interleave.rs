//! A cycle-accurate systolic-array simulation of Fig 5's intra-epoch
//! interleaving.
//!
//! Fig 5 shows the mechanism behind the `A|B` notation of Fig 4: two
//! weight-stationary dataflows (`BQK`, with `BK` resident, and `SLNV`, with
//! `BV` resident) share the 2D array, a given PE computing for one stream
//! on even cycles and the other on odd cycles, so "each neighbor-neighbor
//! link in the array is active in every cycle". This module simulates that
//! at per-PE, per-latch granularity:
//!
//! * every PE holds one stationary weight per stream (two of its RF
//!   entries) plus input latches for the west-flowing operand and the
//!   south-flowing partial sum — data appears on output wires one cycle
//!   after being latched, exactly as Fig 5's toy 2×2 walk-through;
//! * inputs enter the west edge skewed by row; finished partial sums drain
//!   from the south edge;
//! * [`InterleaveMode::Serial`] runs stream A to completion (including its
//!   drain skew) before stream B starts; [`InterleaveMode::Interleaved`]
//!   injects stream B's wavefront right behind stream A's last column, so
//!   B's fill chases A's drain through the array — a given PE computes for
//!   one stream and then, the moment the other wavefront reaches it, for
//!   the other, with no contention and no idle skew between tiles.
//!
//! The simulation computes real matrix products through the latch network,
//! so tests verify bit-exact numerics *and* measure utilization.

use fusemax_tensor::Tensor;
use std::error::Error;
use std::fmt;

/// Which interleaving discipline to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterleaveMode {
    /// Stream A fully fills, computes, and drains before stream B begins
    /// (the +Architecture behavior at cycle granularity).
    Serial,
    /// Streams alternate cycle-by-cycle (Fig 5; the +Binding behavior).
    Interleaved,
}

impl fmt::Display for InterleaveMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            InterleaveMode::Serial => "serial",
            InterleaveMode::Interleaved => "interleaved",
        })
    }
}

/// One weight-stationary stream: `Y[j,t] = Σ_i W[i,j] · X[i,t]`.
///
/// `W` is `rows × cols` (resident, one element per PE) and `X` is
/// `rows × t_len` (streamed through the west edge).
#[derive(Debug, Clone)]
pub struct Stream {
    /// Stationary weights, `rows × cols` row-major.
    pub weights: Vec<f64>,
    /// Streamed inputs, `rows × t_len` row-major.
    pub inputs: Vec<f64>,
    /// Number of streamed input columns.
    pub t_len: usize,
}

impl Stream {
    /// Builds a stream from tensors shaped `[rows, cols]` and `[rows, T]`.
    ///
    /// # Errors
    ///
    /// Returns [`InterleaveError`] when shapes disagree.
    pub fn new(weights: &Tensor<f64>, inputs: &Tensor<f64>) -> Result<Self, InterleaveError> {
        let wr = weights.shape().ranks();
        let xr = inputs.shape().ranks();
        if wr.len() != 2 || xr.len() != 2 {
            return Err(InterleaveError {
                detail: "weights and inputs must be 2-tensors".to_string(),
            });
        }
        if wr[0].extent() != xr[0].extent() {
            return Err(InterleaveError {
                detail: format!(
                    "row mismatch: weights {} vs inputs {}",
                    wr[0].extent(),
                    xr[0].extent()
                ),
            });
        }
        Ok(Self {
            weights: weights.data().to_vec(),
            inputs: inputs.data().to_vec(),
            t_len: xr[1].extent(),
        })
    }

    /// The reference result `Y[j,t]` as a `cols × t_len` row-major buffer.
    pub fn reference(&self, rows: usize, cols: usize) -> Vec<f64> {
        let mut y = vec![0.0; cols * self.t_len];
        for j in 0..cols {
            for t in 0..self.t_len {
                let mut acc = 0.0;
                for i in 0..rows {
                    acc += self.weights[i * cols + j] * self.inputs[i * self.t_len + t];
                }
                y[j * self.t_len + t] = acc;
            }
        }
        y
    }
}

/// Shape errors for the interleave simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterleaveError {
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for InterleaveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "interleave simulation error: {}", self.detail)
    }
}

impl Error for InterleaveError {}

/// The outcome of a cycle-accurate run.
#[derive(Debug, Clone)]
pub struct InterleaveResult {
    /// Stream A's outputs, `cols × t_len_a` row-major.
    pub y_a: Vec<f64>,
    /// Stream B's outputs, `cols × t_len_b` row-major.
    pub y_b: Vec<f64>,
    /// Total cycles until both streams fully drained.
    pub cycles: u64,
    /// Total PE-cycles spent computing MACCs.
    pub busy_pe_cycles: u64,
    /// Mean PE utilization (`busy / (cycles × rows × cols)`).
    pub utilization: f64,
}

/// One latch plane (per stream): west-flowing operands and south-flowing
/// partial sums, each tagged with the input column they belong to.
struct Plane {
    /// `x[i][j]`: operand latched at PE(i,j), with its column tag.
    x: Vec<Option<(usize, f64)>>,
    /// `ps[i][j]`: partial sum leaving PE(i,j) southward, with column tag.
    ps: Vec<Option<(usize, f64)>>,
    /// Next input column each row will inject (rows are skewed by `i`).
    injected: usize,
    /// Outputs collected at the south edge.
    y: Vec<f64>,
    t_len: usize,
    done_outputs: usize,
}

impl Plane {
    fn new(rows: usize, cols: usize, t_len: usize) -> Self {
        Self {
            x: vec![None; rows * cols],
            ps: vec![None; rows * cols],
            injected: 0,
            y: vec![0.0; cols * t_len],
            t_len,
            done_outputs: 0,
        }
    }

    fn finished(&self, cols: usize) -> bool {
        self.done_outputs == cols * self.t_len
    }

    /// Advances this plane by one cycle; returns the number of MACCs
    /// performed (busy PEs).
    fn step(&mut self, stream: &Stream, rows: usize, cols: usize, cycle_index: usize) -> u64 {
        let mut busy = 0u64;
        let mut new_x = vec![None; rows * cols];
        let mut new_ps = vec![None; rows * cols];
        for i in 0..rows {
            for j in 0..cols {
                // West input: the neighbor's latched operand, or a fresh
                // injection at the edge (skewed: row i starts at cycle i).
                let west: Option<(usize, f64)> = if j == 0 {
                    let tau = cycle_index as i64 - i as i64;
                    if tau >= 0 && (tau as usize) < stream.t_len {
                        Some((tau as usize, stream.inputs[i * stream.t_len + tau as usize]))
                    } else {
                        None
                    }
                } else {
                    self.x[i * cols + (j - 1)]
                };
                if let Some((tau, xv)) = west {
                    // North input: partial sum for the same column tag.
                    let north = if i == 0 {
                        0.0
                    } else {
                        self.ps[(i - 1) * cols + j].map(|(_, v)| v).unwrap_or(0.0)
                    };
                    let acc = north + stream.weights[i * cols + j] * xv;
                    busy += 1;
                    new_x[i * cols + j] = Some((tau, xv));
                    new_ps[i * cols + j] = Some((tau, acc));
                }
            }
        }
        // Collect completed sums draining from the south edge.
        for j in 0..cols {
            if let Some((tau, v)) = self.ps[(rows - 1) * cols + j] {
                self.y[j * self.t_len + tau] = v;
                self.done_outputs += 1;
            }
        }
        self.x = new_x;
        self.ps = new_ps;
        // Track injections for completeness (unused beyond debugging).
        self.injected = self.injected.max(cycle_index.min(stream.t_len));
        busy
    }
}

/// Runs two weight-stationary streams through a `rows × cols` systolic
/// array under the chosen interleave discipline.
///
/// # Errors
///
/// Returns [`InterleaveError`] when a stream's shapes disagree with the
/// array.
///
/// # Example
///
/// ```
/// use fusemax_spatial::interleave::{run_streams, InterleaveMode, Stream};
/// use fusemax_tensor::{Shape, Tensor};
///
/// let w = Tensor::from_fn(Shape::of(&[("I", 2), ("J", 2)]), |c| (c[0] + c[1]) as f64);
/// let x = Tensor::from_fn(Shape::of(&[("I", 2), ("T", 3)]), |c| (1 + c[1]) as f64);
/// let s = Stream::new(&w, &x)?;
/// let r = run_streams(&s, &s, 2, 2, InterleaveMode::Interleaved)?;
/// assert_eq!(r.y_a, s.reference(2, 2));
/// # Ok::<(), fusemax_spatial::interleave::InterleaveError>(())
/// ```
pub fn run_streams(
    a: &Stream,
    b: &Stream,
    rows: usize,
    cols: usize,
    mode: InterleaveMode,
) -> Result<InterleaveResult, InterleaveError> {
    for (name, s) in [("A", a), ("B", b)] {
        if s.weights.len() != rows * cols {
            return Err(InterleaveError {
                detail: format!("stream {name}: weights are not {rows}x{cols}"),
            });
        }
        if s.inputs.len() != rows * s.t_len {
            return Err(InterleaveError {
                detail: format!("stream {name}: inputs are not {rows}xT"),
            });
        }
    }

    let mut plane_a = Plane::new(rows, cols, a.t_len);
    let mut plane_b = Plane::new(rows, cols, b.t_len);
    let mut busy = 0u64;
    let mut cycles = 0u64;
    // Per-plane local cycle counters (each plane advances on its own clock).
    let mut ticks_a = 0usize;
    let mut ticks_b = 0usize;
    let limit = 4 * (a.t_len + b.t_len + 2 * (rows + cols)) as u64 + 16;

    match mode {
        InterleaveMode::Serial => {
            while !plane_a.finished(cols) {
                busy += plane_a.step(a, rows, cols, ticks_a);
                ticks_a += 1;
                cycles += 1;
                assert!(cycles < limit, "serial stream A failed to drain");
            }
            while !plane_b.finished(cols) {
                busy += plane_b.step(b, rows, cols, ticks_b);
                ticks_b += 1;
                cycles += 1;
                assert!(cycles < limit, "serial stream B failed to drain");
            }
        }
        InterleaveMode::Interleaved => {
            // Stream B's wavefront enters the array right behind stream A's
            // last injected column. The two wavefronts move in lockstep one
            // hop per cycle, so they never contend for a PE: while A's tail
            // drains through the south-east, B fills from the north-west —
            // one stream's fill hides under the other's drain (Fig 4: "a
            // fill followed by a drain ... can be easily pipelined").
            let offset = a.t_len as u64;
            while !(plane_a.finished(cols) && plane_b.finished(cols)) {
                let mut this_cycle = 0u64;
                if !plane_a.finished(cols) {
                    this_cycle += plane_a.step(a, rows, cols, ticks_a);
                    ticks_a += 1;
                }
                if cycles >= offset && !plane_b.finished(cols) {
                    this_cycle += plane_b.step(b, rows, cols, ticks_b);
                    ticks_b += 1;
                }
                debug_assert!(
                    this_cycle <= (rows * cols) as u64,
                    "wavefronts must not contend for a PE"
                );
                busy += this_cycle;
                cycles += 1;
                assert!(cycles < limit, "interleaved streams failed to drain");
            }
        }
    }

    let utilization = busy as f64 / (cycles as f64 * (rows * cols) as f64);
    Ok(InterleaveResult {
        y_a: plane_a.y,
        y_b: plane_b.y,
        cycles,
        busy_pe_cycles: busy,
        utilization,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusemax_tensor::Shape;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn stream(rows: usize, cols: usize, t: usize, seed: u64) -> Stream {
        let mut rng = StdRng::seed_from_u64(seed);
        Stream {
            weights: (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            inputs: (0..rows * t).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            t_len: t,
        }
    }

    fn close(a: &[f64], b: &[f64]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < 1e-12)
    }

    #[test]
    fn both_modes_compute_exact_matmuls() {
        let (rows, cols, t) = (4, 3, 9);
        let a = stream(rows, cols, t, 1);
        let b = stream(rows, cols, 7, 2);
        for mode in [InterleaveMode::Serial, InterleaveMode::Interleaved] {
            let r = run_streams(&a, &b, rows, cols, mode).unwrap();
            assert!(close(&r.y_a, &a.reference(rows, cols)), "{mode}: stream A");
            assert!(close(&r.y_b, &b.reference(rows, cols)), "{mode}: stream B");
        }
    }

    #[test]
    fn interleaving_hides_fill_and_drain_skew() {
        // Short streams (T comparable to the array skew): serial pays two
        // full fill+drain skews, interleaved pays ~one.
        let (rows, cols, t) = (8, 8, 8);
        let a = stream(rows, cols, t, 3);
        let b = stream(rows, cols, t, 4);
        let serial = run_streams(&a, &b, rows, cols, InterleaveMode::Serial).unwrap();
        let inter = run_streams(&a, &b, rows, cols, InterleaveMode::Interleaved).unwrap();
        assert_eq!(serial.busy_pe_cycles, inter.busy_pe_cycles, "same MACC work");
        assert!(
            inter.cycles < serial.cycles,
            "interleaved {} vs serial {}",
            inter.cycles,
            serial.cycles
        );
        assert!(inter.utilization > serial.utilization);
    }

    #[test]
    fn long_streams_reach_high_utilization_when_interleaved() {
        let (rows, cols) = (4, 4);
        let a = stream(rows, cols, 256, 5);
        let b = stream(rows, cols, 256, 6);
        let r = run_streams(&a, &b, rows, cols, InterleaveMode::Interleaved).unwrap();
        assert!(r.utilization > 0.9, "utilization = {}", r.utilization);
    }

    #[test]
    fn busy_cycles_equal_total_macc_count() {
        // Every (i, j, t) pair of each stream is exactly one MACC.
        let (rows, cols) = (3, 5);
        let a = stream(rows, cols, 6, 7);
        let b = stream(rows, cols, 4, 8);
        let r = run_streams(&a, &b, rows, cols, InterleaveMode::Interleaved).unwrap();
        let want = (rows * cols * a.t_len + rows * cols * b.t_len) as u64;
        assert_eq!(r.busy_pe_cycles, want);
    }

    #[test]
    fn unbalanced_streams_still_complete() {
        let (rows, cols) = (4, 4);
        let a = stream(rows, cols, 32, 9);
        let b = stream(rows, cols, 2, 10);
        let r = run_streams(&a, &b, rows, cols, InterleaveMode::Interleaved).unwrap();
        assert!(close(&r.y_a, &a.reference(rows, cols)));
        assert!(close(&r.y_b, &b.reference(rows, cols)));
    }

    #[test]
    fn shape_errors_are_reported() {
        let a = stream(4, 4, 8, 11);
        let bad = Stream { weights: vec![0.0; 9], inputs: vec![0.0; 12], t_len: 3 };
        assert!(run_streams(&a, &bad, 4, 4, InterleaveMode::Serial).is_err());

        let w = Tensor::from_fn(Shape::of(&[("I", 2), ("J", 2)]), |_| 0.0);
        let x = Tensor::from_fn(Shape::of(&[("I", 3), ("T", 2)]), |_| 0.0);
        assert!(Stream::new(&w, &x).is_err());
    }

    #[test]
    fn stream_from_tensors_round_trips() {
        let w = Tensor::from_fn(Shape::of(&[("I", 2), ("J", 3)]), |c| (c[0] * 3 + c[1]) as f64);
        let x = Tensor::from_fn(Shape::of(&[("I", 2), ("T", 4)]), |c| c[1] as f64);
        let s = Stream::new(&w, &x).unwrap();
        assert_eq!(s.t_len, 4);
        assert_eq!(s.weights.len(), 6);
        let r = run_streams(&s, &s, 2, 3, InterleaveMode::Interleaved).unwrap();
        assert!(close(&r.y_a, &s.reference(2, 3)));
    }
}
