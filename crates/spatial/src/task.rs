//! Logical tasks, units, and bindings (§II-D).

use std::fmt;

/// The compute unit a task is bound to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Unit {
    /// The 2D PE array.
    Array2D,
    /// The 1D (vector) PE array.
    Array1D,
}

impl fmt::Display for Unit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Unit::Array2D => "2D",
            Unit::Array1D => "1D",
        })
    }
}

/// Tile-granular task kinds, one per Einsum of Cascade 5 (plus the
/// serialized binding's explicit fill/drain).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// Einsum 44 — `BQK` tile on the 2D array.
    Bqk,
    /// Einsum 45 — local max, spatial reduction on the 2D array.
    Lm,
    /// Einsum 46 — running-max update on the 1D array.
    Rm,
    /// Einsum 47 — tile numerator (sub-then-exp) on the 2D array.
    Sln,
    /// Einsum 48 — tile denominator, spatial reduction on the 2D array.
    Sld,
    /// Einsum 49 — numerator-times-V tile on the 2D array.
    Slnv,
    /// Einsum 50 — correction factor on the 1D array.
    Prm,
    /// Einsums 51–52 — running denominator update on the 1D array.
    Rd,
    /// Einsums 53–54 — running numerator-times-V update on the 1D array.
    Rnv,
    /// Einsum 55 — final divisions on the 1D array.
    Av,
    /// Array fill/drain charged by the serialized binding.
    FillDrain,
}

impl TaskKind {
    /// The unit this kind is bound to under the FuseMax binding (§V).
    pub fn unit(self) -> Unit {
        match self {
            TaskKind::Bqk
            | TaskKind::Lm
            | TaskKind::Sln
            | TaskKind::Sld
            | TaskKind::Slnv
            | TaskKind::FillDrain => Unit::Array2D,
            TaskKind::Rm | TaskKind::Prm | TaskKind::Rd | TaskKind::Rnv | TaskKind::Av => {
                Unit::Array1D
            }
        }
    }

    /// Short name for traces.
    pub fn name(self) -> &'static str {
        match self {
            TaskKind::Bqk => "BQK",
            TaskKind::Lm => "LM",
            TaskKind::Rm => "RM",
            TaskKind::Sln => "SLN",
            TaskKind::Sld => "SLD",
            TaskKind::Slnv => "SLNV",
            TaskKind::Prm => "PRM",
            TaskKind::Rd => "RD",
            TaskKind::Rnv => "RNV",
            TaskKind::Av => "AV",
            TaskKind::FillDrain => "fill/drain",
        }
    }
}

impl fmt::Display for TaskKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One logical task: a tile-granular piece of one Einsum's iteration space
/// at tile coordinates `(p_tile, m1)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogicalTask {
    /// What the task computes.
    pub kind: TaskKind,
    /// The query tile index.
    pub p_tile: usize,
    /// The key tile index (`m1`), unused by `Av`.
    pub m1: usize,
    /// Duration in cycles on its unit.
    pub duration: u64,
    /// Indices of tasks that must complete first.
    pub deps: Vec<usize>,
}

/// How tasks are ordered onto the hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Binding {
    /// +Architecture: one tile's tasks run to completion (with fill/drain)
    /// before the next tile starts.
    Serialized,
    /// +Binding: list scheduling on true dependencies — software
    /// pipelining across tiles emerges naturally.
    Pipelined,
}

impl fmt::Display for Binding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Binding::Serialized => "serialized",
            Binding::Pipelined => "pipelined",
        })
    }
}

/// A scheduled task instance, for waterfall traces (Fig 4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskRecord {
    /// What ran.
    pub kind: TaskKind,
    /// Where it ran.
    pub unit: Unit,
    /// Tile coordinates `(p_tile, m1)`.
    pub p_tile: usize,
    /// Key tile index.
    pub m1: usize,
    /// Start cycle.
    pub start: u64,
    /// End cycle (exclusive).
    pub end: u64,
}

impl fmt::Display for TaskRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>6}..{:>6}] {} {}(p{},m{})",
            self.start, self.end, self.unit, self.kind, self.p_tile, self.m1
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binding_of_kinds_matches_section_v() {
        // Tensor products + exp on the 2D array; running updates and the
        // division on the 1D array.
        assert_eq!(TaskKind::Bqk.unit(), Unit::Array2D);
        assert_eq!(TaskKind::Sln.unit(), Unit::Array2D);
        assert_eq!(TaskKind::Slnv.unit(), Unit::Array2D);
        assert_eq!(TaskKind::Rm.unit(), Unit::Array1D);
        assert_eq!(TaskKind::Rnv.unit(), Unit::Array1D);
        assert_eq!(TaskKind::Av.unit(), Unit::Array1D);
    }

    #[test]
    fn display_forms() {
        assert_eq!(TaskKind::Bqk.to_string(), "BQK");
        assert_eq!(Unit::Array2D.to_string(), "2D");
        assert_eq!(Binding::Pipelined.to_string(), "pipelined");
        let r = TaskRecord {
            kind: TaskKind::Sln,
            unit: Unit::Array2D,
            p_tile: 0,
            m1: 3,
            start: 10,
            end: 17,
        };
        assert!(r.to_string().contains("SLN"));
        assert!(r.to_string().contains("m3"));
    }
}
