//! Numeric state for one query tile: the dataflow values of Cascade 5.
//!
//! Every tensor is kept *versioned by `m1`* (the running tensors `RM`,
//! `RD`, `RNV` literally have an `M1` rank in the cascade), so task
//! execution is pure dataflow — any schedule that respects the true
//! dependencies computes identical results, which is what lets the
//! out-of-order pipelined binding be validated against the reference.

use crate::task::TaskKind;
use fusemax_tensor::Tensor;

/// Per-(query-tile) dataflow state.
pub(crate) struct TileState {
    e: usize,
    f: usize,
    m0: usize,
    p0: usize,
    m1_count: usize,
    p_tile: usize,
    /// BQK tiles, one per m1: `m0 × p0`.
    bqk: Vec<Vec<f64>>,
    /// Local maxima per m1: `p0`.
    lm: Vec<Vec<f64>>,
    /// Tile numerators per m1: `m0 × p0`.
    sln: Vec<Vec<f64>>,
    /// Tile denominators per m1: `p0`.
    sld: Vec<Vec<f64>>,
    /// Numerator-times-V tiles per m1: `f × p0`.
    slnv: Vec<Vec<f64>>,
    /// Correction factors per m1: `p0`.
    prm: Vec<Vec<f64>>,
    /// Running max, m1 ∈ 0..=M1: `p0`.
    rm: Vec<Vec<f64>>,
    /// Running denominator, m1 ∈ 0..=M1: `p0`.
    rd: Vec<Vec<f64>>,
    /// Running numerator-times-V, m1 ∈ 0..=M1: `f × p0`.
    rnv: Vec<Vec<f64>>,
}

impl TileState {
    pub(crate) fn new(
        e: usize,
        f: usize,
        m0: usize,
        p0: usize,
        m1_count: usize,
        p_tile: usize,
    ) -> Self {
        Self {
            e,
            f,
            m0,
            p0,
            m1_count,
            p_tile,
            bqk: vec![Vec::new(); m1_count],
            lm: vec![Vec::new(); m1_count],
            sln: vec![Vec::new(); m1_count],
            sld: vec![Vec::new(); m1_count],
            slnv: vec![Vec::new(); m1_count],
            prm: vec![Vec::new(); m1_count],
            // Initialization Einsums 41–43.
            rm: {
                let mut v = vec![Vec::new(); m1_count + 1];
                v[0] = vec![f64::NEG_INFINITY; p0];
                v
            },
            rd: {
                let mut v = vec![Vec::new(); m1_count + 1];
                v[0] = vec![0.0; p0];
                v
            },
            rnv: {
                let mut v = vec![Vec::new(); m1_count + 1];
                v[0] = vec![0.0; f * p0];
                v
            },
        }
    }

    /// Executes one task's tile math (`q: E×P`, `k: E×M`, `v: F×M`), writing
    /// `Av` results into `av: F×P`.
    pub(crate) fn execute(
        &mut self,
        kind: TaskKind,
        m1: usize,
        q: &Tensor<f64>,
        k: &Tensor<f64>,
        v: &Tensor<f64>,
        av: &mut Tensor<f64>,
    ) {
        let (e, f, m0, p0) = (self.e, self.f, self.m0, self.p0);
        let p_total = q.shape().ranks()[1].extent();
        let m_total = k.shape().ranks()[1].extent();
        let (qd, kd, vd) = (q.data(), k.data(), v.data());
        let p_base = self.p_tile * p0;
        let m_base = m1 * m0;
        match kind {
            TaskKind::Bqk => {
                let mut tile = vec![0.0; m0 * p0];
                for i in 0..m0 {
                    for j in 0..p0 {
                        let mut acc = 0.0;
                        for ei in 0..e {
                            acc += qd[ei * p_total + p_base + j] * kd[ei * m_total + m_base + i];
                        }
                        tile[i * p0 + j] = acc;
                    }
                }
                self.bqk[m1] = tile;
            }
            TaskKind::Lm => {
                let bqk = &self.bqk[m1];
                let mut lm = vec![f64::NEG_INFINITY; p0];
                for i in 0..m0 {
                    for (j, l) in lm.iter_mut().enumerate() {
                        *l = l.max(bqk[i * p0 + j]);
                    }
                }
                self.lm[m1] = lm;
            }
            TaskKind::Rm => {
                let prev = &self.rm[m1];
                let lm = &self.lm[m1];
                self.rm[m1 + 1] = prev.iter().zip(lm).map(|(&a, &b)| a.max(b)).collect();
            }
            TaskKind::Sln => {
                let bqk = &self.bqk[m1];
                let rm_new = &self.rm[m1 + 1];
                let mut sln = vec![0.0; m0 * p0];
                for i in 0..m0 {
                    for j in 0..p0 {
                        sln[i * p0 + j] = (bqk[i * p0 + j] - rm_new[j]).exp();
                    }
                }
                self.sln[m1] = sln;
            }
            TaskKind::Sld => {
                let sln = &self.sln[m1];
                let mut sld = vec![0.0; p0];
                for i in 0..m0 {
                    for (j, s) in sld.iter_mut().enumerate() {
                        *s += sln[i * p0 + j];
                    }
                }
                self.sld[m1] = sld;
            }
            TaskKind::Slnv => {
                let sln = &self.sln[m1];
                let mut slnv = vec![0.0; f * p0];
                for fi in 0..f {
                    for i in 0..m0 {
                        let vv = vd[fi * m_total + m_base + i];
                        for j in 0..p0 {
                            slnv[fi * p0 + j] += sln[i * p0 + j] * vv;
                        }
                    }
                }
                self.slnv[m1] = slnv;
            }
            TaskKind::Prm => {
                let old = &self.rm[m1];
                let new = &self.rm[m1 + 1];
                self.prm[m1] = old.iter().zip(new).map(|(&a, &b)| (a - b).exp()).collect();
            }
            TaskKind::Rd => {
                let sld = &self.sld[m1];
                let prm = &self.prm[m1];
                let prev = &self.rd[m1];
                self.rd[m1 + 1] =
                    sld.iter().zip(prm).zip(prev).map(|((&s, &c), &r)| s + r * c).collect();
            }
            TaskKind::Rnv => {
                let slnv = &self.slnv[m1];
                let prm = &self.prm[m1];
                let prev = &self.rnv[m1];
                let mut next = vec![0.0; f * p0];
                for fi in 0..f {
                    for j in 0..p0 {
                        next[fi * p0 + j] = slnv[fi * p0 + j] + prev[fi * p0 + j] * prm[j];
                    }
                }
                self.rnv[m1 + 1] = next;
            }
            TaskKind::Av => {
                let last = self.m1_count;
                let rnv = &self.rnv[last];
                let rd = &self.rd[last];
                for fi in 0..f {
                    for j in 0..p0 {
                        av.set(&[fi, p_base + j], rnv[fi * p0 + j] / rd[j]);
                    }
                }
            }
            TaskKind::FillDrain => {}
        }
    }
}
