//! Task-graph construction and the discrete-event list scheduler.

use crate::config::SpatialConfig;
use crate::state::TileState;
use crate::task::{Binding, LogicalTask, TaskKind, TaskRecord, Unit};
use fusemax_tensor::Tensor;
use std::error::Error;
use std::fmt;

/// Simulation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Input shapes disagree with `Q:E×P / K:E×M / V:F×M`.
    BadShapes {
        /// Description of the problem.
        detail: String,
    },
    /// `M` or `P` is not divisible by the array dimension.
    BadTiling {
        /// Description of the problem.
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BadShapes { detail } => write!(f, "bad shapes: {detail}"),
            SimError::BadTiling { detail } => write!(f, "bad tiling: {detail}"),
        }
    }
}

impl Error for SimError {}

/// The outcome of a simulation: numerics plus cycle accounting.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// The computed attention output `AV: F×P`.
    pub av: Tensor<f64>,
    /// Makespan in cycles.
    pub cycles: u64,
    /// 2D-array busy cycles.
    pub busy_2d: u64,
    /// 1D-array busy cycles.
    pub busy_1d: u64,
    /// The full schedule, ordered by start cycle (the Fig 4 waterfall).
    pub records: Vec<TaskRecord>,
}

impl SimResult {
    /// 2D-array utilization.
    pub fn util_2d(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.busy_2d as f64 / self.cycles as f64
        }
    }

    /// 1D-array utilization.
    pub fn util_1d(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.busy_1d as f64 / self.cycles as f64
        }
    }

    /// Renders the first `max_lines` schedule records as a waterfall.
    pub fn waterfall(&self, max_lines: usize) -> String {
        let mut out = String::new();
        for r in self.records.iter().take(max_lines) {
            out.push_str(&r.to_string());
            out.push('\n');
        }
        if self.records.len() > max_lines {
            out.push_str(&format!("… ({} more)\n", self.records.len() - max_lines));
        }
        out
    }
}

/// Simulates Cascade 5 on the spatial array under the given binding.
///
/// Inputs follow the paper's conventions (`Q: E×P`, `K: E×M`, `V: F×M`).
/// `M` must divide by `cfg.rows` and `P` by `cfg.cols`.
///
/// # Errors
///
/// Returns [`SimError`] for malformed shapes or non-divisible tilings.
pub fn simulate(
    q: &Tensor<f64>,
    k: &Tensor<f64>,
    v: &Tensor<f64>,
    cfg: &SpatialConfig,
    binding: Binding,
) -> Result<SimResult, SimError> {
    let dims = fusemax_core::kernels::attention_dims(q, k, v)
        .map_err(|e| SimError::BadShapes { detail: e.to_string() })?;
    let (e, f, m, p) = (dims.e, dims.f, dims.m, dims.p);
    let (m0, p0) = (cfg.rows, cfg.cols);
    if m % m0 != 0 {
        return Err(SimError::BadTiling { detail: format!("M={m} not divisible by rows={m0}") });
    }
    if p % p0 != 0 {
        return Err(SimError::BadTiling { detail: format!("P={p} not divisible by cols={p0}") });
    }
    let m1_count = m / m0;
    let p_tiles = p / p0;

    let tasks = build_graph(cfg, binding, e, f, m1_count, p_tiles);
    let mut states: Vec<TileState> =
        (0..p_tiles).map(|pt| TileState::new(e, f, m0, p0, m1_count, pt)).collect();
    let mut av = Tensor::zeros(fusemax_tensor::Shape::of(&[("F", f), ("P", p)]));

    // List scheduler: repeatedly issue the ready task with the earliest
    // possible start (ties by task index).
    let n = tasks.len();
    let mut done: Vec<Option<u64>> = vec![None; n];
    let mut unit_free: [u64; 2] = [0, 0];
    let mut records: Vec<TaskRecord> = Vec::with_capacity(n);
    let mut busy = [0u64, 0u64];
    let mut remaining = n;
    while remaining > 0 {
        let mut best: Option<(u64, usize)> = None;
        for (i, t) in tasks.iter().enumerate() {
            if done[i].is_some() {
                continue;
            }
            let mut est = 0u64;
            let mut ready = true;
            for &d in &t.deps {
                match done[d] {
                    Some(end) => est = est.max(end),
                    None => {
                        ready = false;
                        break;
                    }
                }
            }
            if !ready {
                continue;
            }
            let unit_idx = unit_index(t.kind.unit());
            est = est.max(unit_free[unit_idx]);
            if best.is_none_or(|(b, _)| est < b) {
                best = Some((est, i));
            }
        }
        let (start, i) = best.expect("dependency cycle in task graph");
        let t = &tasks[i];
        let end = start + t.duration;
        let unit_idx = unit_index(t.kind.unit());
        unit_free[unit_idx] = end;
        if t.kind != TaskKind::FillDrain {
            busy[unit_idx] += t.duration;
        }
        done[i] = Some(end);
        remaining -= 1;
        states[t.p_tile].execute(t.kind, t.m1, q, k, v, &mut av);
        records.push(TaskRecord {
            kind: t.kind,
            unit: t.kind.unit(),
            p_tile: t.p_tile,
            m1: t.m1,
            start,
            end,
        });
    }
    records.sort_by_key(|r| (r.start, r.end));
    let cycles = records.iter().map(|r| r.end).max().unwrap_or(0);
    Ok(SimResult { av, cycles, busy_2d: busy[0], busy_1d: busy[1], records })
}

fn unit_index(u: Unit) -> usize {
    match u {
        Unit::Array2D => 0,
        Unit::Array1D => 1,
    }
}

/// Builds the tile-granular task graph for all query tiles.
fn build_graph(
    cfg: &SpatialConfig,
    binding: Binding,
    e: usize,
    f: usize,
    m1_count: usize,
    p_tiles: usize,
) -> Vec<LogicalTask> {
    let p0 = cfg.cols;
    let lanes = cfg.vector_pes.max(1);
    let vec_slots = p0.div_ceil(lanes) as u64; // 1D passes over a p-tile
    let exp = cfg.exp_cycles();

    let mut tasks: Vec<LogicalTask> = Vec::new();
    let mut last_serial: Option<usize> = None;
    for pt in 0..p_tiles {
        // Per-m1 task indices of the previous iteration (for running deps).
        let mut prev_rm: Option<usize> = None;
        let mut prev_rd: Option<usize> = None;
        let mut prev_rnv: Option<usize> = None;
        for m1 in 0..m1_count {
            let mut push = |kind: TaskKind, duration: u64, mut deps: Vec<usize>| -> usize {
                if binding == Binding::Serialized {
                    // Chain strictly after everything issued so far.
                    if let Some(prev) = last_serial {
                        deps.push(prev);
                    }
                }
                tasks.push(LogicalTask { kind, p_tile: pt, m1, duration, deps });
                let idx = tasks.len() - 1;
                if binding == Binding::Serialized {
                    last_serial = Some(idx);
                }
                idx
            };

            let bqk = push(TaskKind::Bqk, e as u64, vec![]);
            let lm = push(TaskKind::Lm, 1, vec![bqk]);
            let mut rm_deps = vec![lm];
            if let Some(p) = prev_rm {
                rm_deps.push(p);
            }
            let rm = push(TaskKind::Rm, vec_slots, rm_deps);
            let sln = push(TaskKind::Sln, exp, vec![bqk, rm]);
            let sld = push(TaskKind::Sld, 1, vec![sln]);
            let slnv = push(TaskKind::Slnv, f as u64, vec![sln]);
            let prm = push(TaskKind::Prm, exp * vec_slots, vec![rm]);
            let mut rd_deps = vec![sld, prm];
            if let Some(p) = prev_rd {
                rd_deps.push(p);
            }
            let rd = push(TaskKind::Rd, 2 * vec_slots, rd_deps);
            let mut rnv_deps = vec![slnv, prm];
            if let Some(p) = prev_rnv {
                rnv_deps.push(p);
            }
            let rnv = push(TaskKind::Rnv, 2 * f as u64 * vec_slots, rnv_deps);
            if cfg.charge_fill_drain && binding == Binding::Serialized {
                push(TaskKind::FillDrain, (cfg.rows + cfg.cols) as u64, vec![rnv]);
            }
            prev_rm = Some(rm);
            prev_rd = Some(rd);
            prev_rnv = Some(rnv);
        }
        // Einsum 55 after the last iteration.
        let mut av_deps = vec![prev_rd.unwrap(), prev_rnv.unwrap()];
        if binding == Binding::Serialized {
            if let Some(prev) = last_serial {
                av_deps.push(prev);
            }
        }
        tasks.push(LogicalTask {
            kind: TaskKind::Av,
            p_tile: pt,
            m1: m1_count - 1,
            duration: f as u64 * vec_slots,
            deps: av_deps,
        });
        if binding == Binding::Serialized {
            last_serial = Some(tasks.len() - 1);
        }
    }
    tasks
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusemax_core::kernels::attention_reference;
    use fusemax_tensor::{assert_tensors_close, Shape};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn qkv(e: usize, f: usize, m: usize, p: usize, seed: u64) -> [Tensor<f64>; 3] {
        let mut rng = StdRng::seed_from_u64(seed);
        [
            Tensor::random_uniform(Shape::of(&[("E", e), ("P", p)]), -1.0, 1.0, &mut rng),
            Tensor::random_uniform(Shape::of(&[("E", e), ("M", m)]), -1.0, 1.0, &mut rng),
            Tensor::random_uniform(Shape::of(&[("F", f), ("M", m)]), -1.0, 1.0, &mut rng),
        ]
    }

    #[test]
    fn both_bindings_compute_reference_attention() {
        let [q, k, v] = qkv(8, 8, 32, 8, 1);
        let cfg = SpatialConfig::toy(4, 4);
        let want = attention_reference(&q, &k, &v).unwrap();
        for binding in [Binding::Serialized, Binding::Pipelined] {
            let r = simulate(&q, &k, &v, &cfg, binding).unwrap();
            assert_tensors_close(&r.av, &want, 1e-9);
        }
    }

    #[test]
    fn pipelined_binding_is_faster_with_equal_work() {
        let [q, k, v] = qkv(8, 8, 64, 4, 2);
        let cfg = SpatialConfig::toy(4, 4);
        let s = simulate(&q, &k, &v, &cfg, Binding::Serialized).unwrap();
        let p = simulate(&q, &k, &v, &cfg, Binding::Pipelined).unwrap();
        assert_eq!(s.busy_2d, p.busy_2d, "same 2D work under both bindings");
        assert_eq!(s.busy_1d, p.busy_1d, "same 1D work under both bindings");
        assert!(
            p.cycles * 2 < s.cycles,
            "pipelining should at least halve the makespan: {} vs {}",
            p.cycles,
            s.cycles
        );
    }

    #[test]
    fn pipelined_utilization_is_high_for_long_sequences() {
        // 32 m1-iterations amortize the pipeline ramp (Fig 6's +Binding).
        let [q, k, v] = qkv(8, 8, 128, 4, 3);
        let cfg = SpatialConfig::toy(4, 4);
        let r = simulate(&q, &k, &v, &cfg, Binding::Pipelined).unwrap();
        assert!(r.util_2d() > 0.75, "2D util = {}", r.util_2d());
        assert!(r.util_1d() > 0.75, "1D util = {}", r.util_1d());
    }

    #[test]
    fn serialized_utilization_is_poor() {
        let [q, k, v] = qkv(8, 8, 128, 4, 4);
        let cfg = SpatialConfig::toy(4, 4);
        let r = simulate(&q, &k, &v, &cfg, Binding::Serialized).unwrap();
        assert!(r.util_2d() < 0.5, "2D util = {}", r.util_2d());
        assert!(r.util_1d() < 0.5, "1D util = {}", r.util_1d());
    }

    #[test]
    fn pipelined_schedule_overlaps_the_arrays() {
        let [q, k, v] = qkv(4, 4, 32, 4, 5);
        let cfg = SpatialConfig::toy(4, 4);
        let r = simulate(&q, &k, &v, &cfg, Binding::Pipelined).unwrap();
        // Some 2D task must start while a 1D task is still running.
        let overlap = r.records.iter().any(|a| {
            a.unit == Unit::Array2D
                && r.records
                    .iter()
                    .any(|b| b.unit == Unit::Array1D && b.start < a.start && a.start < b.end)
        });
        assert!(overlap, "expected 2D/1D overlap:\n{}", r.waterfall(40));
    }

    #[test]
    fn serialized_schedule_never_overlaps() {
        let [q, k, v] = qkv(4, 4, 16, 4, 6);
        let cfg = SpatialConfig::toy(4, 4);
        let r = simulate(&q, &k, &v, &cfg, Binding::Serialized).unwrap();
        for w in r.records.windows(2) {
            assert!(w[1].start >= w[0].end, "serialized tasks must not overlap: {} {}", w[0], w[1]);
        }
    }

    #[test]
    fn multiple_query_tiles_pipeline_too() {
        let [q, k, v] = qkv(8, 8, 32, 16, 7);
        let cfg = SpatialConfig::toy(4, 4);
        let want = attention_reference(&q, &k, &v).unwrap();
        let r = simulate(&q, &k, &v, &cfg, Binding::Pipelined).unwrap();
        assert_tensors_close(&r.av, &want, 1e-9);
        assert!(r.util_2d() > 0.8, "independent p-tiles should fill gaps: {}", r.util_2d());
    }

    #[test]
    fn bad_tiling_is_rejected() {
        let [q, k, v] = qkv(4, 4, 30, 4, 8);
        let cfg = SpatialConfig::toy(4, 4);
        assert!(matches!(
            simulate(&q, &k, &v, &cfg, Binding::Pipelined),
            Err(SimError::BadTiling { .. })
        ));
    }

    #[test]
    fn bad_shapes_are_rejected() {
        let mut rng = StdRng::seed_from_u64(9);
        let q = Tensor::random_uniform(Shape::of(&[("E", 4), ("P", 4)]), -1.0, 1.0, &mut rng);
        let k = Tensor::random_uniform(Shape::of(&[("E", 8), ("M", 16)]), -1.0, 1.0, &mut rng);
        let v = Tensor::random_uniform(Shape::of(&[("F", 4), ("M", 16)]), -1.0, 1.0, &mut rng);
        assert!(matches!(
            simulate(&q, &k, &v, &SpatialConfig::toy(4, 4), Binding::Pipelined),
            Err(SimError::BadShapes { .. })
        ));
    }

    #[test]
    fn waterfall_renders_and_truncates() {
        let [q, k, v] = qkv(4, 4, 16, 4, 10);
        let r = simulate(&q, &k, &v, &SpatialConfig::toy(4, 4), Binding::Pipelined).unwrap();
        let w = r.waterfall(5);
        assert_eq!(w.lines().count(), 6); // 5 records + truncation line
        assert!(w.contains("BQK"));
        assert!(w.contains("more"));
    }

    #[test]
    fn busy_cycles_match_analytic_totals() {
        // 2D: (E + 1 + exp + 1 + F)·M1 per p-tile; 1D: (1 + exp + 2 +
        // 2F)·M1 + F per p-tile (vec_slots = 1 for cols == lanes).
        let [q, k, v] = qkv(8, 8, 64, 4, 11);
        let cfg = SpatialConfig::toy(4, 4);
        let r = simulate(&q, &k, &v, &cfg, Binding::Pipelined).unwrap();
        let m1 = 64 / 4;
        let t2d = (8 + 1 + 7 + 1 + 8) * m1;
        let t1d = (1 + 7 + 2 + 2 * 8) * m1 + 8;
        assert_eq!(r.busy_2d, t2d as u64);
        assert_eq!(r.busy_1d, t1d as u64);
    }
}
