#![warn(missing_docs)]

//! A discrete-event simulator of the FuseMax mapping and binding (§V,
//! Figures 4–5 made executable).
//!
//! Section II-D's vocabulary is implemented literally: the *mapping* places
//! every iteration-space point of Cascade 5 into a tile-granular
//! [`LogicalTask`]; the task graph carries the cascade's true dependencies;
//! the *binding* assigns tasks to the 2D or 1D PE array and decides whether
//! execution is [`Binding::Serialized`] (+Architecture: each `BQK` tile is
//! fully produced and consumed, with explicit array fills/drains, before
//! the next begins) or [`Binding::Pipelined`] (+Binding: tasks issue as
//! soon as dependencies and units allow, so tile `m1+1`'s `BQK` overlaps
//! tile `m1`'s corrections — Fig 4's epochs emerge from the schedule rather
//! than being assumed).
//!
//! Crucially the simulator *computes the actual attention numerics* as a
//! side effect of executing tasks, so tests can show the pipelined schedule
//! produces exactly the reference output while also measuring utilization.
//!
//! # Example
//!
//! ```
//! use fusemax_spatial::{simulate, Binding, SpatialConfig};
//! use fusemax_core::kernels::attention_reference;
//! use fusemax_tensor::{assert_tensors_close, Shape, Tensor};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(3);
//! let q = Tensor::random_uniform(Shape::of(&[("E", 8), ("P", 4)]), -1.0, 1.0, &mut rng);
//! let k = Tensor::random_uniform(Shape::of(&[("E", 8), ("M", 32)]), -1.0, 1.0, &mut rng);
//! let v = Tensor::random_uniform(Shape::of(&[("F", 8), ("M", 32)]), -1.0, 1.0, &mut rng);
//!
//! let cfg = SpatialConfig::toy(4, 4);
//! let serial = simulate(&q, &k, &v, &cfg, Binding::Serialized)?;
//! let piped = simulate(&q, &k, &v, &cfg, Binding::Pipelined)?;
//!
//! // Identical numerics, fewer cycles with the pipelined binding.
//! assert_tensors_close(&serial.av, &piped.av, 1e-12);
//! assert_tensors_close(&piped.av, &attention_reference(&q, &k, &v)?, 1e-9);
//! assert!(piped.cycles < serial.cycles);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod config;
mod engine;
pub mod interleave;
mod state;
mod task;

pub use config::SpatialConfig;
pub use engine::{simulate, SimError, SimResult};
pub use task::{Binding, LogicalTask, TaskKind, TaskRecord, Unit};
