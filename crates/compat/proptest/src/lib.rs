//! An offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of proptest's API its tests use: the [`proptest!`]
//! macro, [`Strategy`] with [`Strategy::prop_map`] /
//! [`Strategy::prop_recursive`], [`prop_oneof!`], [`Just`], numeric-range
//! strategies, [`collection::vec`], and the `prop_assert*` macros.
//!
//! Differences from upstream, deliberately accepted for a test-only stub:
//!
//! * **no shrinking** — a failing case panics with the generated inputs in
//!   the assertion message instead of minimizing them;
//! * **derived determinism** — each `proptest!` test seeds its RNG from the
//!   test's name, so runs are reproducible without a persistence file;
//! * panics propagate directly rather than being caught and replayed.

use std::cell::Cell;
use std::rc::Rc;

pub use rand::rngs::StdRng as TestRngImpl;
use rand::{Rng as _, SeedableRng as _};

/// The per-test random source handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: TestRngImpl,
}

impl TestRng {
    /// A generator whose stream is a deterministic function of `tag`
    /// (typically the test's name).
    pub fn deterministic(tag: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in tag.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { inner: TestRngImpl::seed_from_u64(seed) }
    }

    /// Uniform `usize` in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot pick from an empty set");
        self.inner.gen_range(0..n)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        self.inner.gen_range(lo..hi)
    }

    /// Uniform `i128` in `[lo, hi)` — the carrier for all integer ranges.
    pub fn i128_in(&mut self, lo: i128, hi: i128) -> i128 {
        let span = (hi - lo) as u128;
        let draw = ((self.inner.gen_range(0.0f64..1.0) * span as f64) as u128).min(span - 1);
        lo + draw as i128
    }
}

/// Generation configuration (`cases` is the only knob the workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type this strategy produces.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }

    /// Type-erases this strategy behind a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy { inner: Rc::new(self) }
    }

    /// Builds a recursive strategy: `self` generates the leaves and
    /// `branch(inner)` wraps an inner strategy into one more level, up to
    /// `depth` levels deep. `_desired_size` and `_expected_branch_size`
    /// exist for upstream signature compatibility; depth alone bounds the
    /// stub's generation.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut level = self.boxed();
        for _ in 0..depth {
            let deeper = branch(level.clone()).boxed();
            // Lean toward leaves (2:1) so expected tree size stays small.
            level = Union { options: vec![level.clone(), level, deeper] }.boxed();
        }
        level
    }
}

/// Object-safe view of [`Strategy`] backing [`BoxedStrategy`].
trait StrategyObj<V> {
    fn generate_obj(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> StrategyObj<S::Value> for S {
    fn generate_obj(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, clonable strategy handle.
pub struct BoxedStrategy<V> {
    inner: Rc<dyn StrategyObj<V>>,
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy { inner: Rc::clone(&self.inner) }
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.inner.generate_obj(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// Uniform choice among same-valued strategies ([`prop_oneof!`]'s output).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.index(self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.i128_in(self.start as i128, self.end as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        rng.f64_in(self.start, self.end)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        rng.f64_in(self.start as f64, self.end as f64) as f32
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// The result of [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates `Vec`s whose length is drawn from `len` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.start + 1 == self.len.end {
                self.len.start
            } else {
                self.len.start + rng.index(self.len.end - self.len.start)
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

thread_local! {
    static CASE_COUNTER: Cell<u64> = const { Cell::new(0) };
}

/// Internal: bumps and returns a per-thread counter so consecutive cases in
/// one test perturb the RNG stream even if a strategy draws nothing.
#[doc(hidden)]
pub fn next_case_nonce() -> u64 {
    CASE_COUNTER.with(|c| {
        let v = c.get().wrapping_add(1);
        c.set(v);
        v
    })
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{BoxedStrategy, Just, ProptestConfig, Strategy, TestRng, Union};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Asserts a condition inside a property (stub: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts equality inside a property (stub: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Asserts inequality inside a property (stub: plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` running the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for _case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)*
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = TestRng::deterministic("t1");
        let s = (0usize..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && v < 20);
        }
    }

    #[test]
    fn oneof_hits_every_option() {
        let mut rng = TestRng::deterministic("t2");
        let s = prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(u8),
            Node(Box<Tree>, Box<Tree>),
        }
        fn check(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(payload) => {
                    assert!(*payload < 10, "leaf payload out of range");
                    0
                }
                Tree::Node(a, b) => 1 + check(a).max(check(b)),
            }
        }
        let strat = (0u8..10).prop_map(Tree::Leaf).prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = TestRng::deterministic("t3");
        for _ in 0..200 {
            assert!(check(&strat.generate(&mut rng)) <= 3);
        }
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let mut rng = TestRng::deterministic("t4");
        let s = prop::collection::vec(0u8..5, 0..3);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v.len() < 3);
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: doc comments, multiple args, trailing comma.
        #[test]
        fn macro_generates_cases(a in 0u64..100, b in 1usize..4,) {
            prop_assert!(a < 100);
            prop_assert!((1..4).contains(&b));
            prop_assert_eq!(a.min(99), a);
        }
    }
}
