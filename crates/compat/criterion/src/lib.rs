//! An offline, API-compatible subset of the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of criterion's API its benches use: [`Criterion`],
//! [`BenchmarkId`], benchmark groups with `measurement_time` /
//! `sample_size`, and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Measurement is honest but simple: each benchmark is warmed up, then
//! timed for `sample_size` samples (each sample auto-scales its iteration
//! count toward an even share of `measurement_time`), and the min / median
//! / max per-iteration times are printed. There is no HTML report, outlier
//! classification, or regression baseline.
//!
//! Setting `FUSEMAX_BENCH_SMOKE=1` clamps every benchmark to a single
//! sample over a few milliseconds — the CI smoke mode (the stub's
//! equivalent of upstream's `cargo bench -- --test`) that proves the
//! bench binaries still compile and run without paying for statistics.

use std::fmt;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id naming only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Hands the measured routine to the harness.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher<'_> {
    /// Times `routine`, auto-scaling iterations per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up & calibration: find the per-call cost.
        let calib_start = Instant::now();
        let mut calib_iters = 0u64;
        while calib_start.elapsed() < self.measurement_time.min(Duration::from_millis(50)) {
            std::hint::black_box(routine());
            calib_iters += 1;
            if calib_iters >= 1000 {
                break;
            }
        }
        let per_call = calib_start.elapsed() / calib_iters.max(1) as u32;

        // Each sample gets an even share of the measurement budget.
        let budget = self.measurement_time / self.sample_size.max(1) as u32;
        let iters_per_sample = if per_call.is_zero() {
            1000
        } else {
            (budget.as_nanos() / per_call.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };

        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed() / iters_per_sample as u32);
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.4} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.4} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.4} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// `true` when `FUSEMAX_BENCH_SMOKE` asks for the run-everything-fast
/// smoke mode (any value but `0`).
fn smoke_mode() -> bool {
    std::env::var_os("FUSEMAX_BENCH_SMOKE").is_some_and(|v| v != "0")
}

/// The measurement settings actually used: the caller's, or the clamped
/// smoke settings when the smoke flag is on.
fn effective_settings(
    smoke: bool,
    sample_size: usize,
    measurement_time: Duration,
) -> (usize, Duration) {
    if smoke {
        (1, Duration::from_millis(5))
    } else {
        (sample_size, measurement_time)
    }
}

fn run_and_report(
    name: &str,
    sample_size: usize,
    measurement_time: Duration,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let (sample_size, measurement_time) =
        effective_settings(smoke_mode(), sample_size, measurement_time);
    let mut samples = Vec::with_capacity(sample_size);
    let mut bencher = Bencher { samples: &mut samples, sample_size, measurement_time };
    f(&mut bencher);
    samples.sort();
    if samples.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    let median = samples[samples.len() / 2];
    println!(
        "{name:<50} time: [{} {} {}]",
        fmt_duration(samples[0]),
        fmt_duration(median),
        fmt_duration(*samples.last().unwrap()),
    );
}

/// A named collection of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the total time budget per benchmark.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks `routine` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_and_report(&label, self.sample_size, self.measurement_time, &mut routine);
        self
    }

    /// Benchmarks `routine` with an explicit input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_and_report(&label, self.sample_size, self.measurement_time, &mut |b| routine(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {
        let _ = &self.criterion;
    }
}

/// The top-level benchmark harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Benchmarks `routine` under `name` with default settings.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_and_report(name, 10, Duration::from_secs(1), &mut routine);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
        }
    }

    /// Upstream-compatible configuration hook (accepted and ignored).
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Prevents the optimizer from discarding a value (re-export convenience).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.measurement_time(Duration::from_millis(20)).sample_size(3);
        group.bench_function("add", |b| b.iter(|| 1u64 + 1));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &x| b.iter(|| x * x));
        group.finish();
    }

    criterion_group!(benches, quick);

    #[test]
    fn harness_runs_and_reports() {
        benches();
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| ()));
    }

    #[test]
    fn smoke_settings_clamp_to_one_cheap_sample() {
        // The env flag itself is read once per benchmark; the clamping is
        // what matters (tested without mutating process env — set_var
        // racing var_os from parallel tests is UB on glibc).
        let (n, t) = effective_settings(true, 20, Duration::from_secs(3));
        assert_eq!(n, 1);
        assert!(t <= Duration::from_millis(5));
        let (n, t) = effective_settings(false, 20, Duration::from_secs(3));
        assert_eq!((n, t), (20, Duration::from_secs(3)));
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter(16).to_string(), "16");
    }
}
