//! An offline, API-compatible subset of the `rayon` data-parallelism crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of rayon's API it uses: `par_iter` / `into_par_iter`
//! on slices and vectors, `map` / `filter_map`, and order-preserving
//! `collect` into a `Vec`.
//!
//! Parallelism is real, just simpler than upstream: inputs are split into
//! one contiguous chunk per available core and executed on scoped OS
//! threads (`std::thread::scope`), with results re-assembled in input
//! order. There is no work stealing, so static contiguous chunking is fair
//! only for roughly uniform per-item cost — which is exactly the sweep
//! workload this workspace parallelizes. For ragged per-item cost
//! (annealing chains whose budgets differ, pruned sweeps where some items
//! short-circuit), the opt-in [`Chunking::Strided`] assignment interleaves
//! items across workers (`worker t` takes items `t, t + k, t + 2k, …`) so
//! expensive items spread over all cores instead of piling into one
//! contiguous chunk.

use std::num::NonZeroUsize;

/// Number of worker threads a parallel call will use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// How items are assigned to worker threads.
///
/// Both strategies preserve input order in the collected output; they only
/// change *which worker* runs each item, i.e. the load balance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Chunking {
    /// One contiguous chunk per core (the default). Best cache locality;
    /// fair when per-item cost is roughly uniform.
    #[default]
    Contiguous,
    /// Interleaved assignment: worker `t` of `k` takes items
    /// `t, t + k, t + 2k, …`. Fairer when per-item cost is ragged —
    /// expensive neighborhoods spread across all workers.
    Strided,
}

/// Applies `f` to every item on scoped threads under the given chunk
/// assignment, reassembling outputs in input order.
fn parallel_apply<T, U, F>(items: Vec<T>, f: &F, chunking: Chunking) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> Vec<U> + Sync,
{
    let threads = current_num_threads();
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().flat_map(f).collect();
    }
    match chunking {
        Chunking::Contiguous => {
            let chunk_len = items.len().div_ceil(threads);
            let mut chunks: Vec<Vec<T>> = Vec::new();
            let mut rest = items;
            while rest.len() > chunk_len {
                let tail = rest.split_off(chunk_len);
                chunks.push(rest);
                rest = tail;
            }
            chunks.push(rest);

            std::thread::scope(|scope| {
                let handles: Vec<_> = chunks
                    .into_iter()
                    .map(|chunk| {
                        scope.spawn(move || chunk.into_iter().flat_map(f).collect::<Vec<U>>())
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("parallel worker panicked"))
                    .collect()
            })
        }
        Chunking::Strided => {
            let workers = threads.min(items.len());
            // Deal the items round-robin, remembering each one's input
            // position so the outputs re-assemble in order.
            let mut hands: Vec<Vec<(usize, T)>> = (0..workers).map(|_| Vec::new()).collect();
            for (i, item) in items.into_iter().enumerate() {
                hands[i % workers].push((i, item));
            }
            let mut indexed: Vec<(usize, Vec<U>)> = std::thread::scope(|scope| {
                let handles: Vec<_> = hands
                    .into_iter()
                    .map(|hand| {
                        scope.spawn(move || {
                            hand.into_iter().map(|(i, item)| (i, f(item))).collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("parallel worker panicked"))
                    .collect()
            });
            indexed.sort_by_key(|(i, _)| *i);
            indexed.into_iter().flat_map(|(_, out)| out).collect()
        }
    }
}

/// A finished-description parallel pipeline that can be driven to a `Vec`.
pub trait ParallelIterator: Sized + Send {
    /// The element type this pipeline yields.
    type Item: Send;

    /// Executes the pipeline on scoped threads, preserving input order.
    fn drive(self) -> Vec<Self::Item>;

    /// Maps every element through `f` in parallel.
    fn map<U, F>(self, f: F) -> Map<Self, F>
    where
        U: Send,
        F: Fn(Self::Item) -> U + Sync + Send,
    {
        Map { base: self, f, chunking: Chunking::Contiguous }
    }

    /// Maps and filters in one step.
    fn filter_map<U, F>(self, f: F) -> FilterMap<Self, F>
    where
        U: Send,
        F: Fn(Self::Item) -> Option<U> + Sync + Send,
    {
        FilterMap { base: self, f, chunking: Chunking::Contiguous }
    }

    /// Collects the results in input order.
    fn collect<C: From<Vec<Self::Item>>>(self) -> C {
        C::from(self.drive())
    }

    /// Number of items (drives the pipeline).
    fn count(self) -> usize {
        self.drive().len()
    }
}

/// Root pipeline over owned items.
pub struct VecParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecParIter<T> {
    type Item = T;

    fn drive(self) -> Vec<T> {
        self.items
    }
}

/// A `map` stage. The first `map`/`filter_map` stage above the root is
/// where parallel execution actually happens.
pub struct Map<P, F> {
    base: P,
    f: F,
    chunking: Chunking,
}

impl<P, F> Map<P, F> {
    /// Opts this stage into the given chunk assignment (stub extension;
    /// upstream rayon work-steals instead). Use [`Chunking::Strided`] for
    /// ragged per-item cost.
    pub fn with_chunking(mut self, chunking: Chunking) -> Self {
        self.chunking = chunking;
        self
    }
}

impl<P, U, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    U: Send,
    F: Fn(P::Item) -> U + Sync + Send,
{
    type Item = U;

    fn drive(self) -> Vec<U> {
        let f = self.f;
        parallel_apply(self.base.drive(), &|x| vec![f(x)], self.chunking)
    }
}

/// A `filter_map` stage.
pub struct FilterMap<P, F> {
    base: P,
    f: F,
    chunking: Chunking,
}

impl<P, F> FilterMap<P, F> {
    /// Opts this stage into the given chunk assignment (stub extension;
    /// upstream rayon work-steals instead). Use [`Chunking::Strided`] for
    /// ragged per-item cost.
    pub fn with_chunking(mut self, chunking: Chunking) -> Self {
        self.chunking = chunking;
        self
    }
}

impl<P, U, F> ParallelIterator for FilterMap<P, F>
where
    P: ParallelIterator,
    U: Send,
    F: Fn(P::Item) -> Option<U> + Sync + Send,
{
    type Item = U;

    fn drive(self) -> Vec<U> {
        let f = self.f;
        parallel_apply(self.base.drive(), &|x| f(x).into_iter().collect(), self.chunking)
    }
}

/// Types convertible into a parallel pipeline by value.
pub trait IntoParallelIterator {
    /// Element type of the pipeline.
    type Item: Send;
    /// Pipeline type produced.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Builds the pipeline.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecParIter<T>;

    fn into_par_iter(self) -> VecParIter<T> {
        VecParIter { items: self }
    }
}

impl<I: Send> IntoParallelIterator for std::ops::Range<I>
where
    std::ops::Range<I>: Iterator<Item = I>,
{
    type Item = I;
    type Iter = VecParIter<I>;

    fn into_par_iter(self) -> VecParIter<I> {
        VecParIter { items: self.collect() }
    }
}

/// Types whose references iterate in parallel (`par_iter`).
pub trait IntoParallelRefIterator<'a> {
    /// Element type of the pipeline (`&'a T`).
    type Item: Send + 'a;
    /// Pipeline type produced.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Builds the pipeline over references.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = VecParIter<&'a T>;

    fn par_iter(&'a self) -> VecParIter<&'a T> {
        VecParIter { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = VecParIter<&'a T>;

    fn par_iter(&'a self) -> VecParIter<&'a T> {
        VecParIter { items: self.iter().collect() }
    }
}

/// The traits a caller needs in scope.
pub mod prelude {
    pub use crate::{Chunking, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let out: Vec<u64> = (0u64..10_000).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out.len(), 10_000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 * 2);
        }
    }

    #[test]
    fn par_iter_over_references() {
        let data: Vec<u32> = (0..1000).collect();
        let out: Vec<u32> = data.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out[999], 1000);
        assert_eq!(out.len(), 1000);
    }

    #[test]
    fn filter_map_drops_elements_in_order() {
        let out: Vec<u32> =
            (0u32..100).into_par_iter().filter_map(|x| (x % 2 == 0).then_some(x)).collect();
        assert_eq!(out, (0..100).filter(|x| x % 2 == 0).collect::<Vec<_>>());
    }

    #[test]
    fn work_actually_spreads_across_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let _: Vec<()> = (0u32..256)
            .into_par_iter()
            .map(|_| {
                seen.lock().unwrap().insert(std::thread::current().id());
            })
            .collect();
        let distinct = seen.lock().unwrap().len();
        if super::current_num_threads() > 1 {
            assert!(distinct > 1, "expected multiple worker threads, saw {distinct}");
        }
    }

    #[test]
    fn tiny_and_empty_inputs() {
        let empty: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(empty.is_empty());
        let one: Vec<u8> = vec![7u8].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![8]);
    }

    #[test]
    fn strided_map_preserves_order() {
        let out: Vec<u64> = (0u64..10_001)
            .into_par_iter()
            .map(|x| x * 3)
            .with_chunking(super::Chunking::Strided)
            .collect();
        assert_eq!(out.len(), 10_001);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 * 3);
        }
    }

    #[test]
    fn strided_and_contiguous_agree() {
        let items: Vec<u32> = (0..997).collect();
        let contiguous: Vec<u32> = items.par_iter().map(|&x| x ^ 0xAB).collect();
        let strided: Vec<u32> =
            items.par_iter().map(|&x| x ^ 0xAB).with_chunking(super::Chunking::Strided).collect();
        assert_eq!(contiguous, strided);
    }

    #[test]
    fn strided_filter_map_drops_elements_in_order() {
        let out: Vec<u32> = (0u32..200)
            .into_par_iter()
            .filter_map(|x| (x % 3 == 0).then_some(x))
            .with_chunking(super::Chunking::Strided)
            .collect();
        assert_eq!(out, (0..200).filter(|x| x % 3 == 0).collect::<Vec<_>>());
    }

    #[test]
    fn strided_spreads_a_ragged_prefix_across_workers() {
        // All the "expensive" items sit in the first half; under strided
        // assignment every worker must see some of them. Observable
        // machine-independently: each worker's hand holds items i with
        // i % workers == t, so the set of threads touching the expensive
        // prefix equals the set touching the cheap suffix.
        use std::collections::HashSet;
        use std::sync::Mutex;
        let threads = super::current_num_threads();
        if threads <= 1 || threads > 256 {
            return; // single-threaded: nothing to spread; >256 workers: hands outnumber the prefix
        }
        let expensive_threads = Mutex::new(HashSet::new());
        let cheap_threads = Mutex::new(HashSet::new());
        let _: Vec<()> = (0u32..512)
            .into_par_iter()
            .map(|i| {
                let set = if i < 256 { &expensive_threads } else { &cheap_threads };
                set.lock().unwrap().insert(std::thread::current().id());
            })
            .with_chunking(super::Chunking::Strided)
            .collect();
        let expensive = expensive_threads.into_inner().unwrap();
        let cheap = cheap_threads.into_inner().unwrap();
        assert!(expensive.len() > 1, "strided must spread the expensive prefix");
        assert_eq!(expensive, cheap, "every worker sees both halves under striding");
    }

    #[test]
    fn strided_tiny_inputs() {
        let one: Vec<u8> = vec![7u8]
            .into_par_iter()
            .map(|x| x + 1)
            .with_chunking(super::Chunking::Strided)
            .collect();
        assert_eq!(one, vec![8]);
        let empty: Vec<u8> = Vec::<u8>::new()
            .into_par_iter()
            .map(|x| x)
            .with_chunking(super::Chunking::Strided)
            .collect();
        assert!(empty.is_empty());
    }
}
