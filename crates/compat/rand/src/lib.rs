//! An offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand`'s 0.8 API it actually uses:
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], [`Rng::gen_range`]
//! over half-open ranges of the common numeric types, and
//! [`Rng::gen_bool`].
//!
//! The generator is SplitMix64 — statistically solid for test-data
//! synthesis, deterministic per seed, and trivially portable. It is *not*
//! the same stream as upstream `StdRng` (ChaCha12), which is fine: nothing
//! in the workspace depends on upstream's exact bit stream, only on
//! determinism per seed.

use std::ops::Range;

/// Low-level source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from the half-open `range` (`lo..hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Samples a value of a [`StandardDistributed`] type (`f64` in
    /// `[0, 1)`, integers over their full range).
    fn gen<T: StandardDistributed>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p` (a Bernoulli draw; the slice of
    /// upstream's `gen_bool` the guided search strategies use).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws one value from `[lo, hi)`.
    fn sample_uniform<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T: SampleUniform> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_uniform(self.start, self.end, rng)
    }
}

/// A `u64` in `[0, 2^53)` mapped to `[0, 1)` with full double precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        let x = lo + (hi - lo) * unit_f64(rng);
        // Guard against rounding up to the excluded endpoint.
        if x >= hi {
            lo
        } else {
            x
        }
    }
}

impl SampleUniform for f32 {
    fn sample_uniform<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        let x = lo + (hi - lo) * unit_f64(rng) as f32;
        if x >= hi {
            lo
        } else {
            x
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo bias is ≤ span/2^64 — negligible for test data.
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types [`Rng::gen`] can produce without an explicit range.
pub trait StandardDistributed {
    /// Draws one standard-distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardDistributed for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl StandardDistributed for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardDistributed for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Parameterized distributions, mirroring the `rand`/`rand_distr` API
/// slice the workspace uses: a [`distributions::Distribution`] trait, the
/// exponential distribution behind the serving simulator's
/// Poisson/bursty inter-arrival gaps, and the geometric distribution
/// (the discrete counterpart, kept API-compatible with
/// `rand_distr::Geometric` for count-valued traffic models).
pub mod distributions {
    use super::{unit_f64, RngCore};

    /// Types that can sample values of `T` from an [`RngCore`] — the
    /// upstream `Distribution` contract.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Error constructing a distribution from invalid parameters
    /// (upstream splits these per crate; one shared enum suffices here).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum ParamError {
        /// The rate parameter `λ` must be positive and finite.
        LambdaNotPositive,
        /// The success probability `p` must lie in `(0, 1]`.
        ProbabilityInvalid,
    }

    impl std::fmt::Display for ParamError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                ParamError::LambdaNotPositive => write!(f, "λ must be positive and finite"),
                ParamError::ProbabilityInvalid => write!(f, "p must be in (0, 1]"),
            }
        }
    }

    impl std::error::Error for ParamError {}

    /// The exponential distribution `Exp(λ)` with mean `1/λ` — the
    /// inter-arrival law of a Poisson process (API-compatible with
    /// `rand_distr::Exp`).
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Exp {
        lambda: f64,
    }

    impl Exp {
        /// An exponential distribution with rate `lambda`.
        pub fn new(lambda: f64) -> Result<Self, ParamError> {
            if lambda > 0.0 && lambda.is_finite() {
                Ok(Exp { lambda })
            } else {
                Err(ParamError::LambdaNotPositive)
            }
        }
    }

    impl Distribution<f64> for Exp {
        /// Inverse-CDF sampling: `-ln(1 - U) / λ` with `U ∈ [0, 1)`, so
        /// the draw is always finite and nonnegative.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            -(1.0 - unit_f64(rng)).ln() / self.lambda
        }
    }

    /// The geometric distribution counting failures before the first
    /// success of a Bernoulli(`p`) trial, supported on `0, 1, 2, …`
    /// (API-compatible with `rand_distr::Geometric`).
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Geometric {
        p: f64,
    }

    impl Geometric {
        /// A geometric distribution with success probability `p`.
        pub fn new(p: f64) -> Result<Self, ParamError> {
            if p > 0.0 && p <= 1.0 {
                Ok(Geometric { p })
            } else {
                Err(ParamError::ProbabilityInvalid)
            }
        }
    }

    impl Distribution<u64> for Geometric {
        /// Inverse-CDF sampling: `⌊ln(1 - U) / ln(1 - p)⌋`, exact for the
        /// discrete geometric law; `p = 1` always yields 0.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            if self.p >= 1.0 {
                return 0;
            }
            let u = unit_f64(rng);
            let k = ((1.0 - u).ln() / (1.0 - self.p).ln()).floor();
            if k >= u64::MAX as f64 {
                u64::MAX
            } else {
                k as u64
            }
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    ///
    /// Passes BigCrush-level smoke statistics, one multiplication and a few
    /// shifts per draw, and — the property the tests rely on — identical
    /// streams for identical seeds on every platform.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0..1.0), b.gen_range(0.0..1.0));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let n = rng.gen_range(5usize..17);
            assert!((5..17).contains(&n));
            let i = rng.gen_range(-50i64..-40);
            assert!((-50..-40).contains(&i));
        }
    }

    #[test]
    fn gen_bool_matches_its_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn exponential_matches_its_rate() {
        use super::distributions::{Distribution, Exp};
        let mut rng = StdRng::seed_from_u64(21);
        let exp = Exp::new(4.0).unwrap();
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = exp.sample(&mut rng);
            assert!(x >= 0.0 && x.is_finite());
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}, expected 1/λ = 0.25");
    }

    #[test]
    fn exponential_is_deterministic_per_seed() {
        use super::distributions::{Distribution, Exp};
        let exp = Exp::new(1.5).unwrap();
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(exp.sample(&mut a), exp.sample(&mut b));
        }
    }

    #[test]
    fn exponential_rejects_bad_rates() {
        use super::distributions::Exp;
        assert!(Exp::new(0.0).is_err());
        assert!(Exp::new(-1.0).is_err());
        assert!(Exp::new(f64::NAN).is_err());
        assert!(Exp::new(f64::INFINITY).is_err());
        assert!(Exp::new(1e-9).is_ok());
    }

    #[test]
    fn geometric_matches_its_mean() {
        use super::distributions::{Distribution, Geometric};
        let mut rng = StdRng::seed_from_u64(8);
        let p = 0.2;
        let geo = Geometric::new(p).unwrap();
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| geo.sample(&mut rng)).sum();
        let mean = sum as f64 / n as f64;
        // E[failures before first success] = (1 - p) / p = 4.
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}, expected 4");
    }

    #[test]
    fn geometric_edge_cases() {
        use super::distributions::{Distribution, Geometric};
        let mut rng = StdRng::seed_from_u64(2);
        let sure = Geometric::new(1.0).unwrap();
        for _ in 0..100 {
            assert_eq!(sure.sample(&mut rng), 0, "p = 1 always succeeds immediately");
        }
        assert!(Geometric::new(0.0).is_err());
        assert!(Geometric::new(1.1).is_err());
        assert!(Geometric::new(-0.5).is_err());
    }

    #[test]
    fn works_through_mut_references() {
        fn takes_impl(rng: &mut impl Rng) -> f64 {
            rng.gen_range(0.0..1.0)
        }
        let mut rng = StdRng::seed_from_u64(9);
        let _ = takes_impl(&mut rng);
        let _ = takes_impl(&mut &mut rng);
    }
}
