//! An offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand`'s 0.8 API it actually uses:
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], [`Rng::gen_range`]
//! over half-open ranges of the common numeric types, and
//! [`Rng::gen_bool`].
//!
//! The generator is SplitMix64 — statistically solid for test-data
//! synthesis, deterministic per seed, and trivially portable. It is *not*
//! the same stream as upstream `StdRng` (ChaCha12), which is fine: nothing
//! in the workspace depends on upstream's exact bit stream, only on
//! determinism per seed.

use std::ops::Range;

/// Low-level source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from the half-open `range` (`lo..hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Samples a value of a [`StandardDistributed`] type (`f64` in
    /// `[0, 1)`, integers over their full range).
    fn gen<T: StandardDistributed>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p` (a Bernoulli draw; the slice of
    /// upstream's `gen_bool` the guided search strategies use).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws one value from `[lo, hi)`.
    fn sample_uniform<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T: SampleUniform> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_uniform(self.start, self.end, rng)
    }
}

/// A `u64` in `[0, 2^53)` mapped to `[0, 1)` with full double precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        let x = lo + (hi - lo) * unit_f64(rng);
        // Guard against rounding up to the excluded endpoint.
        if x >= hi {
            lo
        } else {
            x
        }
    }
}

impl SampleUniform for f32 {
    fn sample_uniform<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        let x = lo + (hi - lo) * unit_f64(rng) as f32;
        if x >= hi {
            lo
        } else {
            x
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo bias is ≤ span/2^64 — negligible for test data.
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types [`Rng::gen`] can produce without an explicit range.
pub trait StandardDistributed {
    /// Draws one standard-distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardDistributed for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl StandardDistributed for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardDistributed for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    ///
    /// Passes BigCrush-level smoke statistics, one multiplication and a few
    /// shifts per draw, and — the property the tests rely on — identical
    /// streams for identical seeds on every platform.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0..1.0), b.gen_range(0.0..1.0));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let n = rng.gen_range(5usize..17);
            assert!((5..17).contains(&n));
            let i = rng.gen_range(-50i64..-40);
            assert!((-50..-40).contains(&i));
        }
    }

    #[test]
    fn gen_bool_matches_its_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn works_through_mut_references() {
        fn takes_impl(rng: &mut impl Rng) -> f64 {
            rng.gen_range(0.0..1.0)
        }
        let mut rng = StdRng::seed_from_u64(9);
        let _ = takes_impl(&mut rng);
        let _ = takes_impl(&mut &mut rng);
    }
}
