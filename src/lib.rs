#![warn(missing_docs)]

//! # FuseMax — a Rust reproduction of the MICRO 2024 paper
//!
//! *FuseMax: Leveraging Extended Einsums to Optimize Attention Accelerator
//! Design* (Nayak, Wu, Odemuyiwa, Pellauer, Emer, Fletcher).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Module | Contents | Paper section |
//! |--------|----------|---------------|
//! | [`tensor`] | dense named-rank tensors, fibertree views | §II-A |
//! | [`einsum`] | extended-Einsum IR, parser, counting evaluator | §II-B/C |
//! | [`core`] | pass analysis, footprints, attention cascades, kernels, taxonomy | §III–IV |
//! | [`arch`] | spatial architecture, energy, area models | §V Fig 2–3 |
//! | [`spatial`] | discrete-event mapping/binding simulator | §V Fig 4–5 |
//! | [`model`] | analytical performance/energy models of all configurations | §VI |
//! | [`workloads`] | BERT / TrXL / T5 / XLM definitions | §VI-A |
//! | [`dse`] | parallel design-space search: Pareto frontiers, pruning, eval cache | §VI Fig 12 generalized |
//! | [`serve`] | traffic-driven serving simulator, SLA-aware design selection | beyond the paper |
//! | [`eval`] | figure/table regeneration harness | §VI Figs 6–12, Table I |
//! | [`telemetry`] | deterministic tracing, metrics, Perfetto export for search and serving | beyond the paper |
//!
//! # Quickstart
//!
//! ```
//! use fusemax::core::cascades::attention;
//! use fusemax::core::passes::analyze_passes;
//! use fusemax::model::{attention_report, ConfigKind, ModelParams};
//! use fusemax::workloads::TransformerConfig;
//!
//! // 1. The mapping-agnostic analysis: FlashAttention-2's cascade needs a
//! //    single pass over the softmax rank; FLAT's needs three.
//! assert_eq!(analyze_passes(&attention::one_pass(), "M")?.num_passes, 1);
//! assert_eq!(analyze_passes(&attention::three_pass(), "M")?.num_passes, 3);
//!
//! // 2. The modeled consequence: on 64K-token BERT attention, FuseMax
//! //    beats FLAT by several-fold under the iso-area cloud setup.
//! let bert = TransformerConfig::bert();
//! let params = ModelParams::default();
//! let flat = attention_report(ConfigKind::Flat, &bert, 1 << 16, None, &params);
//! let fusemax = attention_report(ConfigKind::FuseMaxBinding, &bert, 1 << 16, None, &params);
//! assert!(flat.cycles / fusemax.cycles > 4.0);
//! # Ok::<(), fusemax::core::passes::AnalysisError>(())
//! ```

pub use fusemax_arch as arch;
pub use fusemax_core as core;
pub use fusemax_dse as dse;
pub use fusemax_einsum as einsum;
pub use fusemax_eval as eval;
pub use fusemax_model as model;
pub use fusemax_serve as serve;
pub use fusemax_spatial as spatial;
pub use fusemax_telemetry as telemetry;
pub use fusemax_tensor as tensor;
pub use fusemax_workloads as workloads;
